package core

import "soar/internal/topology"

// This file implements the two memory-layer optimizations behind the
// bounded DP (see DESIGN.md "Effective-budget clamping"):
//
//   - EffectiveCaps computes cap[v] = min(k, Σ_{u ∈ T_v} c(u)) — the
//     largest budget a subtree can actually use; |T_v ∩ Λ| in the uniform
//     model, the capacity-vector sum under EffectiveCapsVec. X_v(ℓ, ·) is
//     constant beyond cap[v], so every table row is stored at width
//     cap[v]+1 and reads past the cap clamp to the last column.
//   - arena backs all nodeTables of one Gather run with a handful of
//     slabs instead of O(n) per-node allocations. Offsets are prefix
//     sums computed up front, so concurrent engines carve disjoint
//     windows without synchronization.

// EffectiveCaps returns, for every switch v, the effective budget
// cap[v] = min(k, |T_v ∩ Λ|): placing more than cap[v] blue switches
// inside T_v is impossible, so X_v(ℓ, i) = X_v(ℓ, cap[v]) for every
// i ≥ cap[v]. avail == nil means every switch is available. A negative
// k is treated as 0.
func EffectiveCaps(t *topology.Tree, avail []bool, k int) []int {
	return effectiveCaps(t, avail, nil, k)
}

// EffectiveCapsVec is EffectiveCaps under the heterogeneous capacity
// model: cap[v] = min(k, Σ_{u ∈ T_v} caps[u]), the largest budget the
// subtree can consume when a blue at u costs caps[u] units. With a 0/1
// capacity vector it coincides with EffectiveCaps, whose |T_v ∩ Λ| is
// the same sum. caps == nil means every switch has capacity 1.
func EffectiveCapsVec(t *topology.Tree, caps []int, k int) []int {
	return effectiveCaps(t, nil, caps, k)
}

// effectiveCaps is the shared implementation: the per-switch weight is
// caps[v] when a capacity vector is present, else 1 on Λ (see capAt).
// The running sum accumulates in int64 so the clamp is exact even with
// MaxCapacity weights and a near-MaxInt budget on 32-bit platforms.
func effectiveCaps(t *topology.Tree, avail []bool, caps []int, k int) []int {
	out := make([]int, t.N())
	effectiveCapsInto(out, t, avail, caps, k)
	return out
}

// effectiveCapsInto is effectiveCaps writing into a caller-owned buffer
// of length N(): stateless solves allocate, but the memo and the batch
// solver recompute caps every call and reuse one buffer.
//
//soar:hotpath
func effectiveCapsInto(out []int, t *topology.Tree, avail []bool, caps []int, k int) {
	if k < 0 {
		k = 0
	}
	for _, v := range t.PostOrder() {
		c := int64(capAt(avail, caps, v))
		if c < int64(k) {
			for _, ch := range t.Children(v) {
				c += int64(out[ch])
				if c >= int64(k) {
					break
				}
			}
		}
		if c > int64(k) {
			c = int64(k)
		}
		out[v] = int(c)
	}
}

// effectiveCapRoot returns the root's effective cap min(k, Σ_v c(v))
// without materializing the whole vector — the memoized gather fuses
// the per-switch caps into its sweep and only needs the root bound to
// size its merge scratch, and only when a solve actually misses.
//
//soar:hotpath
func effectiveCapRoot(t *topology.Tree, avail []bool, caps []int, k int) int {
	if k < 0 {
		k = 0
	}
	var c int64
	for v := 0; v < t.N(); v++ {
		c += int64(capAt(avail, caps, v))
		if c >= int64(k) {
			return k
		}
	}
	return int(c)
}

// arena owns the backing storage of one Gather run: one float64 slab for
// the X tables, one bool slab for the color flags, and (when breadcrumbs
// are recorded) one int32 slab plus one slice-header slab for the split
// tables. Per-node offsets are precomputed, so node(v) is pure slicing —
// no allocation, no locking — and a full solve performs O(1) large
// allocations instead of O(n) small ones.
type arena struct {
	caps  []int
	xOff  []int // xOff[v]: offset of v's x/isBlue window; xOff[n] = total
	spOff []int // offset into the int32 split slab
	hdOff []int // offset into the split header slab

	x      []float64
	isBlue []bool
	splits []int32
	hdr    [][]int32
}

// newArena sizes and allocates the slabs for one run over t with the
// given effective caps, with per-switch windows laid out in level order
// (levelOrderOffsets): the bottom-up sweep fills each slab back to
// front, siblings adjacent — the SoA layout the merge kernel streams
// over. recordSplits selects whether the breadcrumb slab is allocated
// (the compact engine re-derives splits instead).
func newArena(t *topology.Tree, caps []int, recordSplits bool) *arena {
	n := t.N()
	a := &arena{caps: caps}
	a.xOff, a.spOff, a.hdOff = levelOrderOffsets(t, caps, recordSplits)
	a.x = make([]float64, a.xOff[n])
	a.isBlue = make([]bool, a.xOff[n])
	if recordSplits {
		a.splits = make([]int32, a.spOff[n])
		a.hdr = make([][]int32, a.hdOff[n])
	}
	return a
}

// node carves the pre-sized, zeroed tables of switch v out of the slabs.
// Capacities are pinned to the window sizes so a later regrowth (the
// incremental engine under SetAvail) reallocates instead of bleeding
// into a neighbor's window.
func (a *arena) node(t *topology.Tree, v int) nodeTables {
	rows := t.Depth(v) + 1
	w := a.caps[v] + 1
	lo, hi := a.xOff[v], a.xOff[v]+rows*w
	nt := nodeTables{
		cap:    a.caps[v],
		x:      a.x[lo:hi:hi],
		isBlue: a.isBlue[lo:hi:hi],
	}
	if a.splits != nil {
		if merges := t.NumChildren(v) - 1; merges > 0 {
			nt.splits = a.hdr[a.hdOff[v] : a.hdOff[v]+merges : a.hdOff[v]+merges]
			rowLen := 2 * rows * w
			off := a.spOff[v]
			for m := range nt.splits {
				nt.splits[m] = a.splits[off : off+rowLen : off+rowLen]
				off += rowLen
			}
		}
	}
	return nt
}

// newNodeStorage allocates standalone tables for one switch, for engines
// that build nodes in isolation (the message-passing protocol engine).
func newNodeStorage(depth, capv, numChildren int, recordSplits bool) nodeTables {
	w := capv + 1
	sz := (depth + 1) * w
	nt := nodeTables{
		cap:    capv,
		x:      make([]float64, sz),
		isBlue: make([]bool, sz),
	}
	if recordSplits && numChildren > 1 {
		nt.splits = make([][]int32, numChildren-1)
		rowLen := 2 * sz
		for m := range nt.splits {
			nt.splits[m] = make([]int32, rowLen)
		}
	}
	return nt
}

// ensureNodeStorage resizes nt in place for a (possibly changed) cap,
// reusing the existing backing arrays whenever they are large enough.
// The incremental engine calls this on every recompute, so steady-state
// flushes (loads changing, caps stable) allocate nothing; the grow
// branches below only fire when a cap was raised, and carry coldpath
// waivers so soarlint's hotpath analyzer enforces exactly that.
//
//soar:hotpath
func ensureNodeStorage(nt *nodeTables, depth, capv, numChildren int, recordSplits bool) {
	w := capv + 1
	sz := (depth + 1) * w
	nt.cap = capv
	if cap(nt.x) >= sz {
		nt.x = nt.x[:sz]
	} else {
		nt.x = make([]float64, sz) //soar:coldpath cap grew
	}
	if cap(nt.isBlue) >= sz {
		nt.isBlue = nt.isBlue[:sz]
	} else {
		nt.isBlue = make([]bool, sz) //soar:coldpath cap grew
	}
	if !recordSplits || numChildren <= 1 {
		nt.splits = nil
		return
	}
	if nt.splits == nil {
		nt.splits = make([][]int32, numChildren-1) //soar:coldpath first use
	}
	rowLen := 2 * sz
	for m := range nt.splits {
		if cap(nt.splits[m]) >= rowLen {
			nt.splits[m] = nt.splits[m][:rowLen]
		} else {
			nt.splits[m] = make([]int32, rowLen) //soar:coldpath cap grew
		}
	}
}

// scratch holds the four Y merge rows computeNode ping-pongs between.
// One scratch serves a whole serial run (or one worker, or one stateful
// engine); it is sized once at the widest row any node can need and
// re-sliced per node. maxCap is the root's effective cap: cap(v) ≤
// cap(root) for every v, so width maxCap+1 covers the whole tree. A
// budget of k=1<<30 with three available switches costs rows of width
// 4, not four gigarows.
type scratch struct {
	yr, yb, newYR, newYB []float64
}

func newScratch(maxCap int) *scratch {
	buf := make([]float64, 4*(maxCap+1))
	w := maxCap + 1
	return &scratch{
		yr:    buf[0*w : 1*w],
		yb:    buf[1*w : 2*w],
		newYR: buf[2*w : 3*w],
		newYB: buf[3*w : 4*w],
	}
}
