package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"soar/internal/topology"
)

// This file implements the structural solve cache behind the memoized
// SOAR engines (see DESIGN.md "Structural memoization"). Fat-tree-like
// evaluation topologies are overwhelmingly symmetric: in BT(2048)
// thousands of subtrees are pairwise isomorphic with identical loads,
// capacities and ρ-up profiles, yet the plain engines recompute every
// switch's nodeTables on every solve. A Memo groups switches into exact
// equivalence classes — switches whose computeNode inputs are provably
// identical — runs the DP once per class, and aliases the resulting
// tables across all class members. Because the representative runs the
// very same computeNode, the aliased tables, breadcrumbs and placements
// are bitwise identical to the unmemoized engines for every member.
//
// A class is the hash-consed tuple
//
//	(path digest, L(v), 1{subtree load > 0}, c(v), cap(v), children classes)
//
// where the path digest (topology.PathDigest) pins depth(v) and the full
// ρ-up vector, cap(v) is the effective budget the tables are clamped to,
// and the children classes appear in child order (the merge order and
// the split breadcrumbs depend on it, so unordered canonization would
// break bitwise traceback equality). Every component computeNode reads
// is in the tuple, and interning compares tuples exactly — this is
// hash-consing, not fingerprint hashing, so equal class ids imply equal
// inputs with no collision risk.
//
// Zero-load subtrees — the dominant case under sparse multi-tenant
// workloads — get a dedicated fast path: their tables are provably
// all-zero (red everywhere, zero potential, zero splits), so every such
// class is served by slicing one shared all-zero slab instead of
// running computeNode.
//
// Ownership: tables inserted into a Memo are immutable from then on.
// Engines alias them (struct copies sharing the backing slices) and must
// never write through them; the incremental engine therefore computes
// into fresh storage when a dirty switch misses the cache, instead of
// recycling its (possibly shared) old storage in place.

// defaultMemoBudget bounds the bytes a Memo retains before evicting.
const defaultMemoBudget = 256 << 20

// memo bookkeeping constants: rough per-entry overheads used for the
// byte budget (struct headers, slice headers).
const (
	memoEntryOverhead = 128
	sliceHeaderBytes  = 24
)

// classKey is the exact equivalence-class tuple of one switch. kids is
// the interned id of the child-class list (-1 for leaves).
type classKey struct {
	path    int32
	kids    int32
	load    int64
	capw    int32
	ecap    int64
	hasLoad bool
}

// listKey interns child-class lists as cons cells.
type listKey struct{ prev, child int32 }

// memoEntry is one class: its canonical tables, once computed. The nt
// field is the aliasing contract of the cache made checkable: once an
// entry is published, engines share its backing slices, so only the
// constructors below may ever store through it.
type memoEntry struct {
	ok    bool
	bytes int64
	//soar:immutable
	nt nodeTables
}

// MemoStats reports a Memo's cumulative behavior.
type MemoStats struct {
	// Classes is the number of distinct equivalence classes interned in
	// the current epoch.
	Classes int
	// Hits and Misses count class-table lookups across all solves.
	Hits, Misses uint64
	// Bytes approximates the retained table storage.
	Bytes int64
	// Epoch counts evictions: it increments every time the byte budget
	// forces a full reset.
	Epoch uint64
}

// Memo is a reusable cache of class tables for one tree. It serves any
// number of solves — across differing loads, availability sets,
// capacity vectors and budgets k — and keeps warm tables between them,
// so request streams with recurring structure (symmetric topologies,
// churning sparse tenants) skip most of the DP.
//
// A Memo is NOT safe for concurrent use: share one per goroutine (the
// scheduler gives each pool worker its own, trading a little redundant
// warmup for a lock-free hot path). GatherParallelMemo fans its own
// workers out internally and is safe to call like any other method.
//
// Stats is the one exception to the single-goroutine rule: its
// counters (classes, hits, misses, bytes, epoch) are atomics, so any
// goroutine may read Stats while the owning goroutine solves — this is
// how the scheduler's metrics registry scrapes per-worker caches
// without stopping them. The values form no consistent cut (a scrape
// may see a miss counted before its bytes land), but each one is a
// valid point-in-time read.
type Memo struct {
	t      *topology.Tree
	budget int64
	epoch  atomic.Uint64

	classes map[classKey]int32
	lists   map[listKey]int32
	entries []memoEntry
	// nclasses mirrors len(entries) atomically: Stats must not read the
	// entries slice header while the owner appends to it.
	nclasses atomic.Int64

	hits, misses atomic.Uint64
	bytes        atomic.Int64

	sc    *scratch
	scCap int
	cbuf  []*nodeTables

	// Shared all-zero storage for the zero-load fast path. Grows to the
	// largest table shape seen; superseded slabs stay referenced by the
	// tables sliced from them (still all zeros, still immutable).
	//soar:immutable
	zeroX []float64
	//soar:immutable
	zeroIsBlue []bool
	//soar:immutable
	zeroSplits []int32
}

// NewMemo returns an empty solve cache for tree t with the default
// eviction budget.
func NewMemo(t *topology.Tree) *Memo {
	return &Memo{
		t:       t,
		budget:  defaultMemoBudget,
		classes: make(map[classKey]int32),
		lists:   make(map[listKey]int32),
	}
}

// Tree returns the tree the memo caches solves for.
func (m *Memo) Tree() *topology.Tree { return m.t }

// SetBudget sets the byte budget above which the next solve evicts the
// cache (full reset). Non-positive values are ignored.
func (m *Memo) SetBudget(bytes int64) {
	if bytes > 0 {
		m.budget = bytes
	}
}

// Stats returns the memo's cumulative counters. Unlike every other
// method, Stats is safe to call from any goroutine while the owner
// solves: each counter is read atomically (see the type comment for
// the consistency caveat).
func (m *Memo) Stats() MemoStats {
	return MemoStats{
		Classes: int(m.nclasses.Load()),
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Bytes:   m.bytes.Load(),
		Epoch:   m.epoch.Load(),
	}
}

// Reset evicts every cached class and bumps the epoch. Tables already
// aliased by live engines stay valid (they are immutable and keep their
// backing slabs alive); the engines re-intern against the new epoch on
// their next flush.
func (m *Memo) Reset() {
	m.epoch.Add(1)
	clear(m.classes)
	clear(m.lists)
	m.entries = m.entries[:0]
	m.nclasses.Store(0)
	m.bytes.Store(0)
}

// maybeEvict resets the memo when the retained bytes exceed the budget.
// Called between solves only, never mid-solve.
//
//soar:hotpath
func (m *Memo) maybeEvict() {
	if m.bytes.Load() > m.budget {
		m.Reset() //soar:coldpath eviction
	}
}

// internList interns one cons cell of a child-class list.
//
//soar:hotpath
func (m *Memo) internList(prev, child int32) int32 {
	key := listKey{prev, child}
	id, ok := m.lists[key]
	if !ok {
		id = int32(len(m.lists))
		m.lists[key] = id
	}
	return id
}

// internClass interns a class tuple, growing the entry table on first
// sight.
//
//soar:hotpath
func (m *Memo) internClass(key classKey) int32 {
	id, ok := m.classes[key]
	if !ok {
		id = int32(len(m.entries))
		m.classes[key] = id
		m.entries = append(m.entries, memoEntry{})
		m.nclasses.Add(1)
	}
	return id
}

// internClassFor builds and interns the class tuple of one switch: fold
// v's children's class ids (in child order) into a cons-list, then
// intern the full tuple. Every call site that classifies a switch —
// the serial and parallel gathers, the incremental flush and the
// post-eviction reclass — MUST go through this single helper: table
// aliasing is sound only if all paths derive identical keys from
// identical components.
//
//soar:hotpath
func (m *Memo) internClassFor(v int, classOf, pd []int32, loadV int, hasLoad bool, capw, ecap int) int32 {
	kids := int32(-1)
	for _, c := range m.t.Children(v) {
		kids = m.internList(kids, classOf[c])
	}
	return m.internClass(classKey{
		path:    pd[v],
		kids:    kids,
		load:    int64(loadV),
		capw:    int32(capw),
		ecap:    int64(ecap),
		hasLoad: hasLoad,
	})
}

// ensureScratch sizes the merge scratch and the shared zero slabs for
// a solve whose root effective cap is maxCap — the widest row any node
// can need (cap(v) ≤ cap(root) for all v), so sizing from it instead of
// the raw budget keeps huge-k/sparse-Λ solves cheap. The zero slabs are
// pre-sized to the largest table shape the tree can produce under
// maxCap, so every zero-load class of a solve slices the same slab (the
// aliasing the sparse fast path promises) instead of racing a growing
// one.
//
//soar:hotpath
//soar:ctor grows the shared zero slabs
func (m *Memo) ensureScratch(maxCap int) {
	if m.sc == nil || m.scCap < maxCap {
		m.sc = newScratch(maxCap) //soar:coldpath first use or cap raise
		m.scCap = maxCap
	}
	sz := (m.t.Height() + 2) * (maxCap + 1) // rows ≤ height+2, width ≤ maxCap+1
	if len(m.zeroX) < sz {
		m.zeroX = make([]float64, sz)   //soar:coldpath first use or cap raise
		m.zeroIsBlue = make([]bool, sz) //soar:coldpath first use or cap raise
	}
	if len(m.zeroSplits) < 2*sz {
		m.zeroSplits = make([]int32, 2*sz) //soar:coldpath first use or cap raise
	}
}

// zeroTable builds the canonical trivial table of a zero-load subtree:
// X ≡ 0, red everywhere, zero splits — exactly what computeNode produces
// when no message ever leaves the subtree. All zero classes slice the
// same shared slabs, so the fast path allocates only the split headers.
func (m *Memo) zeroTable(depth, capw, ecap, numChildren int) (nodeTables, int64) {
	rows, w := depth+1, ecap+1
	sz := rows * w
	rowLen := 2 * sz
	nt := nodeTables{
		cap:    ecap,
		capw:   capw,
		x:      m.zeroX[:sz:sz],
		isBlue: m.zeroIsBlue[:sz:sz],
	}
	bytes := int64(memoEntryOverhead)
	if merges := numChildren - 1; merges > 0 {
		nt.splits = make([][]int32, merges)
		for i := range nt.splits {
			nt.splits[i] = m.zeroSplits[:rowLen:rowLen]
		}
		bytes += int64(merges) * sliceHeaderBytes
	}
	return nt, bytes
}

// zeroTableBytes is the byte accounting of a zero-slab table (used when
// seeding the memo from an engine's live tables after an eviction).
func zeroTableBytes(numChildren int) int64 {
	b := int64(memoEntryOverhead)
	if merges := numChildren - 1; merges > 0 {
		b += int64(merges) * sliceHeaderBytes
	}
	return b
}

// tableBytes approximates the retained storage of a computed table.
func tableBytes(nt *nodeTables) int64 {
	b := int64(memoEntryOverhead) + int64(len(nt.x))*9 // 8B float64 + 1B bool
	for _, sp := range nt.splits {
		b += int64(len(sp))*4 + sliceHeaderBytes
	}
	return b
}

// computeEntry fills entry e for a class, with v as its representative.
// Zero-load classes take the shared-slab fast path; loaded classes run
// the ordinary computeNode into fresh memo-owned storage.
//
//soar:ctor publishes memoEntry.nt
func (m *Memo) computeEntry(e *memoEntry, v, loadV int, hasLoad bool, capw, ecap int, children []*nodeTables, sc *scratch) {
	if !hasLoad {
		e.nt, e.bytes = m.zeroTable(m.t.Depth(v), capw, ecap, m.t.NumChildren(v))
	} else {
		nt := newNodeStorage(m.t.Depth(v), ecap, m.t.NumChildren(v), true)
		computeNode(m.t, v, loadV, hasLoad, capw, &nt, children, sc)
		e.nt = nt
		e.bytes = tableBytes(&nt)
	}
	e.ok = true
	m.bytes.Add(e.bytes)
}

// gather is the memoized SOAR-Gather shared by the serial entry points
// and the stateful engines: one bottom-up pass interns every switch's
// class and computes each class table at most once. classOf, when
// non-nil, receives the per-switch class ids (the incremental engine
// keeps them to re-intern only dirty paths later).
func (m *Memo) gather(load []int, avail []bool, caps []int, k int, classOf []int32) *Tables {
	m.maybeEvict()
	t := m.t
	n := t.N()
	if classOf == nil {
		classOf = make([]int32, n)
	}
	ecaps := effectiveCaps(t, avail, caps, k)
	subLoad := t.SubtreeLoads(load)
	pd := t.PathDigests()
	m.ensureScratch(ecaps[t.Root()])
	tb := &Tables{t: t, load: load, k: k, nodes: make([]nodeTables, n)}
	for _, v := range t.PostOrder() {
		hasLoad := subLoad[v] > 0
		capw := capAt(avail, caps, v)
		cid := m.internClassFor(v, classOf, pd, load[v], hasLoad, capw, ecaps[v])
		classOf[v] = cid
		e := &m.entries[cid]
		if !e.ok {
			m.misses.Add(1)
			m.cbuf = m.cbuf[:0]
			for _, c := range t.Children(v) {
				m.cbuf = append(m.cbuf, &m.entries[classOf[c]].nt)
			}
			m.computeEntry(e, v, load[v], hasLoad, capw, ecaps[v], m.cbuf, m.sc)
		} else {
			m.hits.Add(1)
		}
		tb.nodes[v] = e.nt
	}
	return tb
}

// GatherMemo is Gather through the solve cache: tables, breadcrumbs and
// placements are bitwise identical to Gather on the same inputs, but the
// DP runs once per equivalence class instead of once per switch, and a
// warm memo skips even that.
func GatherMemo(m *Memo, load []int, avail []bool, k int) *Tables {
	validate(m.t, load, avail)
	if k < 0 {
		k = 0
	}
	return m.gather(load, avail, nil, k, nil)
}

// GatherMemoCaps is GatherMemo under the heterogeneous capacity model
// (see GatherCaps). One Memo may serve uniform and capacity-vector
// solves interchangeably: the class tuples carry the weights.
func GatherMemoCaps(m *Memo, load []int, caps []int, k int) *Tables {
	validateCaps(m.t, load, caps)
	if k < 0 {
		k = 0
	}
	return m.gather(load, nil, caps, k, nil)
}

// SolveMemo is Solve through the solve cache; the placement is bitwise
// identical to Solve.
func SolveMemo(m *Memo, load []int, avail []bool, k int) Result {
	tb := GatherMemo(m, load, avail, k)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveMemoCaps is SolveCaps through the solve cache.
func SolveMemoCaps(m *Memo, load []int, caps []int, k int) Result {
	tb := GatherMemoCaps(m, load, caps, k)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveCompactMemo is SolveCompact through the solve cache: the compact
// traceback (ColorPhaseCompact) re-derives splits against the aliased
// class tables. The memoized engine already collapses table storage to
// O(classes), so the compact and full memoized engines share the same
// cached tables.
func SolveCompactMemo(m *Memo, load []int, avail []bool, k int) Result {
	tb := GatherMemo(m, load, avail, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// SolveCompactMemoCaps is SolveCompactCaps through the solve cache.
func SolveCompactMemoCaps(m *Memo, load []int, caps []int, k int) Result {
	tb := GatherMemoCaps(m, load, caps, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// GatherParallelMemo is the memoized parallel Gather: instead of
// GatherParallel's node-level dependency counting, workers steal whole
// equivalence classes from the class DAG, so symmetric trees schedule
// O(classes) units of work rather than O(n). Tables are identical to
// Gather. workers ≤ 0 selects GOMAXPROCS.
func GatherParallelMemo(m *Memo, load []int, avail []bool, k, workers int) *Tables {
	validate(m.t, load, avail)
	if k < 0 {
		k = 0
	}
	return m.gatherParallel(load, avail, nil, k, workers)
}

// GatherParallelMemoCaps is GatherParallelMemo under the heterogeneous
// capacity model.
func GatherParallelMemoCaps(m *Memo, load []int, caps []int, k, workers int) *Tables {
	validateCaps(m.t, load, caps)
	if k < 0 {
		k = 0
	}
	return m.gatherParallel(load, nil, caps, k, workers)
}

// SolveParallelMemo runs the class-parallel Gather followed by the
// serial Color phase; the result is identical to Solve.
func SolveParallelMemo(m *Memo, load []int, avail []bool, k, workers int) Result {
	tb := GatherParallelMemo(m, load, avail, k, workers)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// gatherParallel interns classes serially (the pass is inherently
// bottom-up and cheap), then fans the uncached, loaded classes out over
// a worker pool along the class DAG: a class becomes ready when all its
// children classes have tables. Zero-load classes are served from the
// shared slab during the interning pass itself.
//
//soar:ctor publishes memoEntry.nt (zero-load fast path and worker loop)
func (m *Memo) gatherParallel(load []int, avail []bool, caps []int, k, workers int) *Tables {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m.maybeEvict()
	t := m.t
	n := t.N()
	ecaps := effectiveCaps(t, avail, caps, k)
	subLoad := t.SubtreeLoads(load)
	pd := t.PathDigests()
	m.ensureScratch(ecaps[t.Root()])
	classOf := make([]int32, n)
	firstNew := int32(len(m.entries))
	var reps []int32 // rep node of each class interned by this pass
	for _, v := range t.PostOrder() {
		hasLoad := subLoad[v] > 0
		capw := capAt(avail, caps, v)
		cid := m.internClassFor(v, classOf, pd, load[v], hasLoad, capw, ecaps[v])
		classOf[v] = cid
		if int(cid-firstNew) == len(reps) {
			reps = append(reps, int32(v))
			m.misses.Add(1)
			if !hasLoad {
				e := &m.entries[cid]
				e.nt, e.bytes = m.zeroTable(t.Depth(v), capw, ecaps[v], t.NumChildren(v))
				e.ok = true
				m.bytes.Add(e.bytes)
			}
		} else {
			m.hits.Add(1)
		}
	}

	// Class DAG over the still-uncomputed classes: one pending unit per
	// (parent, child-occurrence) edge, mirroring gatherParallel's
	// node-level dependency counting at class granularity.
	nNew := len(reps)
	pending := make([]int32, nNew)
	parents := make([][]int32, nNew)
	count := 0
	for li := 0; li < nNew; li++ {
		cid := firstNew + int32(li)
		if m.entries[cid].ok {
			continue
		}
		count++
		for _, c := range t.Children(int(reps[li])) {
			ccid := classOf[c]
			if ccid >= firstNew && !m.entries[ccid].ok {
				pending[li]++
				parents[ccid-firstNew] = append(parents[ccid-firstNew], int32(li))
			}
		}
	}
	if count > 0 {
		ready := make(chan int32, count)
		for li := 0; li < nNew; li++ {
			if !m.entries[firstNew+int32(li)].ok && pending[li] == 0 {
				ready <- int32(li)
			}
		}
		if workers > count {
			workers = count
		}
		var done int64
		var retained atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sc := newScratch(ecaps[t.Root()])
				var cbuf []*nodeTables
				for li := range ready {
					cid := firstNew + li
					rep := int(reps[li])
					e := &m.entries[cid]
					cbuf = cbuf[:0]
					for _, c := range t.Children(rep) {
						cbuf = append(cbuf, &m.entries[classOf[c]].nt)
					}
					nt := newNodeStorage(t.Depth(rep), ecaps[rep], t.NumChildren(rep), true)
					computeNode(t, rep, load[rep], true, capAt(avail, caps, rep), &nt, cbuf, sc)
					e.nt = nt
					e.bytes = tableBytes(&nt)
					e.ok = true
					retained.Add(e.bytes)
					for _, p := range parents[li] {
						if atomic.AddInt32(&pending[p], -1) == 0 {
							ready <- p
						}
					}
					if atomic.AddInt64(&done, 1) == int64(count) {
						close(ready) // all classes computed; release workers
					}
				}
			}()
		}
		wg.Wait()
		m.bytes.Add(retained.Load())
	}

	tb := &Tables{t: t, load: load, k: k, nodes: make([]nodeTables, n)}
	for v := 0; v < n; v++ {
		tb.nodes[v] = m.entries[classOf[v]].nt
	}
	return tb
}
