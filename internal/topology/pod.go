package topology

import "fmt"

// Pod is the shard-local view of one pod of a fabric: the subtree rooted
// at the pod root plus the spine chain of ancestors up to the global
// root, extracted as a self-contained Tree.
//
// The construction preserves every per-edge rate and every hop distance
// to the destination d, so a solve over the pod tree prices traffic
// exactly as the global tree would. Spine switches carry no pod load and
// are marked so callers can pin their capacity to zero; under that
// profile the pod-local optimum is exactly the global optimum restricted
// to the pod (siblings of the spine are zero-load and contribute nothing
// to Φ). The control plane (internal/ha) shards a fabric into one
// scheduler per Pod on this basis.
type Pod struct {
	// Tree is the local tree: spine chain first (local ids 0..Spine-1,
	// global root at 0), then the pod subtree in BFS order.
	Tree *Tree
	// Root is the global id of the pod root switch.
	Root int
	// Spine is the number of spine-chain switches; local ids < Spine are
	// ancestors of the pod root (zero in the degenerate whole-tree pod).
	Spine int
	// Global maps local switch ids to global ids: Global[lv] = gv.
	Global []int
	// Local maps global switch ids to local ids, or -1 for switches
	// outside this pod's view.
	Local []int
}

// PodTree extracts the pod rooted at global switch v: the subtree T_v
// together with the ancestor chain v→root, as its own Tree.
//
// Subtree switches keep their relative BFS order, so child lists agree
// with the global tree's iteration order and DP merge order — a solve
// over the pod (with spine capacities pinned to zero) is bitwise
// identical to the global solve of a load confined to T_v.
func (t *Tree) PodTree(v int) (*Pod, error) {
	if v < 0 || v >= t.N() {
		return nil, fmt.Errorf("topology: pod root %d out of range [0,%d)", v, t.N())
	}
	n := t.N()
	local := make([]int, n)
	for i := range local {
		local[i] = -1
	}
	// Spine chain: root first, down to v's parent.
	var global []int
	for u := v; u != t.root; {
		u = t.parent[u]
		global = append(global, u)
	}
	for i, j := 0, len(global)-1; i < j; i, j = i+1, j-1 {
		global[i], global[j] = global[j], global[i]
	}
	spine := len(global)
	// Pod subtree in global BFS order (parents before children, and
	// children in the same relative order as the global child lists).
	global = append(global, v)
	local[v] = spine
	for i := spine; i < len(global); i++ {
		for _, c := range t.children[global[i]] {
			local[c] = len(global)
			global = append(global, c)
		}
	}
	for i, gv := range global[:spine] {
		local[gv] = i
	}
	parent := make([]int, len(global))
	omega := make([]float64, len(global))
	for lv, gv := range global {
		omega[lv] = 1 / t.rho[gv]
		if gp := t.parent[gv]; gp == NoParent {
			parent[lv] = NoParent
		} else {
			parent[lv] = local[gp]
		}
	}
	sub, err := New(parent, omega)
	if err != nil {
		return nil, fmt.Errorf("topology: pod at %d: %w", v, err)
	}
	return &Pod{Tree: sub, Root: v, Spine: spine, Global: global, Local: local}, nil
}
