// Command soarctl is the command-line front end of the SOAR
// reproduction: it computes placements on configurable topologies,
// replays the paper's walkthrough example, regenerates every evaluation
// figure, and runs the TCP-cluster deployment.
//
// Usage:
//
//	soarctl demo
//	soarctl place   [-topo bt|sf] [-n 256] [-k 16] [-dist uniform|powerlaw]
//	                [-rates constant|linear|exp] [-seed 1] [-dot file]
//	                [-engine full|compact|parallel|distributed|incremental]
//	                [-caps uniform:C|tiered:C0,C1,...|tor:P,C|powerlaw:MAX,ALPHA]
//	soarctl exp     <fig6|fig7|fig8|fig9|fig10|fig11|ext-*|all> [-quick]
//	                [-csv dir] [-reps N] [-engine full|incremental]
//	                [-caps uniform|tiered|tor|powerlaw]
//	soarctl cluster [-n 64] [-k 8] [-seed 1]
//	soarctl sched   [-n 1024] [-k 8] [-capacity 16] [-caps profile]
//	                [-tenants 2000] [-clients 8] [-workers 0] [-window 200us]
//	                [-racks 8] [-churn 0.5] [-repack-every 25ms]
//	                [-repack-moves 16] [-seed 1] [-baseline]
//	soarctl top     [-addr http://127.0.0.1:7070] [-every 1s] [-n 0] [-once]
//	soarctl shards  [-addr http://127.0.0.1:7070] [-timeout 5s]
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = runDemo(os.Args[2:])
	case "place":
		err = runPlace(os.Args[2:])
	case "exp":
		err = runExp(os.Args[2:])
	case "cluster":
		err = runCluster(os.Args[2:])
	case "sched":
		err = runSched(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "top":
		err = runTop(os.Args[2:])
	case "shards":
		err = runShards(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "soarctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "soarctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `soarctl — SOAR (CoNEXT 2021) reproduction toolkit

Commands:
  demo       walk through the paper's Figs. 2-3 example
  place      compute placements for one instance, all strategies
  exp        regenerate a paper figure (fig6..fig11, ext-*, or all)
  cluster    run SOAR + Reduce over a loopback TCP mesh
  sched      load-test the concurrent multi-tenant placement scheduler
  verify     certify the solver against brute force on random instances
  top        poll a running soar-naasd's /metrics and render a live summary
  shards     show a sharded soar-naasd's membership: primaries, epochs, standbys

Run 'soarctl <command> -h' for flags.
`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return fs
}
