package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/stats"
	"soar/internal/topology"
)

// Fig9Config parameterizes the paper's Fig. 9: the running time of
// SOAR-Gather (and, per Sec. 5.4, the orders-faster SOAR-Color) across
// network sizes and budgets.
type Fig9Config struct {
	// Sizes are BT network sizes (paper: 256, 512, 1024, 2048).
	Sizes []int
	// Ks are the budgets (paper: 4, 8, 16, 32, 64, 128).
	Ks []int
	// Reps averages wall-clock times (paper: 10).
	Reps int
	Seed int64
}

// DefaultFig9 reproduces the paper's grid.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Sizes: []int{256, 512, 1024, 2048},
		Ks:    []int{4, 8, 16, 32, 64, 128},
		Reps:  10,
		Seed:  4,
	}
}

// QuickFig9 is a reduced instance for tests.
func QuickFig9() Fig9Config {
	return Fig9Config{Sizes: []int{64, 128}, Ks: []int{4, 8}, Reps: 2, Seed: 4}
}

// Fig9 regenerates the paper's Fig. 9: mean SOAR-Gather seconds per
// (size, k) plus a companion subplot for SOAR-Color, which the paper
// reports as roughly three orders of magnitude faster. Absolute values
// differ from the paper (Go vs Python); the scaling shape — quadratic in
// k, near-linear in n — is the reproduced claim.
func Fig9(cfg Fig9Config) (*Figure, error) {
	gather := Subplot{Name: "SOAR-Gather time", XLabel: "k", YLabel: "seconds"}
	color := Subplot{Name: "SOAR-Color time", XLabel: "k", YLabel: "seconds"}
	xs := make([]float64, len(cfg.Ks))
	for i, k := range cfg.Ks {
		xs[i] = float64(k)
	}
	for _, n := range cfg.Sizes {
		tr, err := topology.BT(n)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		gAcc := stats.NewAccumulator(len(cfg.Ks))
		cAcc := stats.NewAccumulator(len(cfg.Ks))
		for rep := 0; rep < cfg.Reps; rep++ {
			loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
			gRow := make([]float64, len(cfg.Ks))
			cRow := make([]float64, len(cfg.Ks))
			for ki, k := range cfg.Ks {
				start := time.Now()
				tb := core.Gather(tr, loads, nil, k)
				gRow[ki] = time.Since(start).Seconds()
				start = time.Now()
				core.ColorPhase(tb)
				cRow[ki] = time.Since(start).Seconds()
			}
			gAcc.Add(gRow)
			cAcc.Add(cRow)
		}
		gather.Series = append(gather.Series, Series{
			Label: fmt.Sprintf("size %d", n), X: xs, Y: gAcc.Mean(), Err: gAcc.StdErr(),
		})
		color.Series = append(color.Series, Series{
			Label: fmt.Sprintf("size %d", n), X: xs, Y: cAcc.Mean(), Err: cAcc.StdErr(),
		})
	}
	return &Figure{
		ID:       "fig9",
		Title:    "SOAR running time (log-log in the paper)",
		Subplots: []Subplot{gather, color},
	}, nil
}
