// Multi-tenant online allocation, in two acts.
//
// Act 1 is the paper's Sec. 5.2 model: workloads arrive one at a time,
// every switch can aggregate for at most a few workloads (bounded
// capacity), and each arrival gets its aggregation switches before the
// next is seen. SOAR applied online degrades gracefully as capacity
// fills, and stays ahead of the baselines.
//
// Act 2 is what that model becomes at service scale: thousands of
// tenants arriving and departing concurrently, admitted by the
// internal/sched scheduler — batched arrivals, a pool of incremental
// SOAR engines, commit-order conflict resolution, and a background
// re-packer that recovers the utilization departures fragment away.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/sched"
	"soar/internal/topology"
	"soar/internal/workload"
)

func main() {
	sequentialComparison()
	concurrentScheduler()
}

// sequentialComparison reproduces the paper's online setting: one
// shared arrival sequence, four strategies, paired comparison.
func sequentialComparison() {
	t, err := topology.BT(128)
	if err != nil {
		log.Fatal(err)
	}
	const (
		budget   = 8  // aggregation switches per workload
		capacity = 3  // workloads a switch can serve
		arrivals = 24 // tenants arriving online
	)

	// One shared arrival sequence makes the comparison paired.
	seq := workload.NewSequence(t, rand.New(rand.NewSource(3)))
	tenants := make([][]int, arrivals)
	for i := range tenants {
		tenants[i] = seq.Next()
	}

	strategies := []placement.Strategy{
		core.Strategy{}, placement.Top{}, placement.Max{}, placement.Level{},
	}
	fmt.Printf("%d tenants arriving online, k=%d per tenant, switch capacity %d\n\n",
		arrivals, budget, capacity)
	fmt.Printf("%-10s", "tenant")
	for _, s := range strategies {
		fmt.Printf(" %10s", s.Name())
	}
	fmt.Println(" (cumulative utilization vs all-red)")

	results := make([]workload.RunResult, len(strategies))
	for si, s := range strategies {
		alloc := workload.NewAllocator(t, s, budget, capacity)
		results[si] = workload.Run(alloc, tenants)
	}
	for i := 0; i < arrivals; i += 4 {
		fmt.Printf("%-10d", i+1)
		for si := range strategies {
			fmt.Printf(" %10.3f", results[si].CumulativeRatio[i])
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "final")
	for si := range strategies {
		fmt.Printf(" %10.3f", results[si].CumulativeRatio[arrivals-1])
	}
	fmt.Println()

	fmt.Println("\nEarly tenants enjoy deep savings; once capacities fill, later tenants")
	fmt.Println("run closer to all-red and the cumulative ratio climbs (paper Fig. 7).")
}

// concurrentScheduler drives the placement scheduler with thousands of
// churning tenants from parallel clients.
func concurrentScheduler() {
	t, err := topology.BT(1024)
	if err != nil {
		log.Fatal(err)
	}
	const (
		budget   = 8    // aggregation switches per tenant
		capacity = 8    // tenants a switch can serve
		racks    = 8    // leaves each tenant loads
		clients  = 16   // concurrent request streams
		tenants  = 4000 // admissions across all clients
	)
	s := sched.New(t, sched.Config{
		Capacity: capacity,
		Window:   200 * time.Microsecond,
		Repack:   sched.RepackConfig{Every: 20 * time.Millisecond, MaxMoves: 16},
	})
	defer s.Close()

	fmt.Printf("\n--- concurrent: %d tenants, %d clients, BT(1024), k=%d, capacity %d ---\n",
		tenants, clients, budget, capacity)

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			var lease sched.Lease
			var mine []int64
			for i := 0; i < tenants/clients; i++ {
				loads := load.GenerateSparse(t, load.PaperPowerLaw(), racks, rng)
				if err := s.PlaceInto(loads, budget, &lease); err != nil {
					log.Fatal(err)
				}
				mine = append(mine, lease.ID)
				// Two-thirds of tenants eventually depart, fragmenting
				// capacity for the re-packer to reclaim.
				if rng.Intn(3) > 0 && len(mine) > 4 {
					j := rng.Intn(len(mine))
					id := mine[j]
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := s.Release(id); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	m := s.Metrics()
	st := s.Snapshot()
	fmt.Printf("admitted %d tenants in %v — %.0f placements/s\n",
		m.Placed, elapsed.Round(time.Millisecond), float64(m.Placed)/elapsed.Seconds())
	fmt.Printf("latency p50=%v p95=%v p99=%v; batches mean %.1f max %d; %d conflicts re-solved\n",
		m.PlaceP50, m.PlaceP95, m.PlaceP99, m.MeanBatch, m.MaxBatch, m.Conflicts)
	fmt.Printf("re-packer: %d rounds moved %d tenants, Φ recovered %.1f\n",
		m.RepackRounds, m.RepackMoves, m.PhiRecovered)
	fmt.Printf("end state: %d live tenants on %d switches, mean ratio %.3f\n",
		st.Tenants, st.SwitchesInUse, st.MeanRatio)
	fmt.Println("\nThe single mutex-and-resolve service this replaced admitted tenants one")
	fmt.Println("at a time; the scheduler batches arrivals onto pooled incremental engines")
	fmt.Println("and re-packs behind departures (see `soarctl sched -baseline`).")
}
