package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// This file certifies the effective-budget clamping (see DESIGN.md): the
// bounded engines must be *bitwise* indistinguishable from the unbounded
// O(n·h·k²) DP this repository shipped before the optimization. To that
// end it carries a verbatim copy of the pre-change engine — full-width
// k+1 tables, unrestricted merge scans — and checks tables, color flags
// and placements cell by cell, plus the invariant the clamping relies on
// (X_v(ℓ, i) constant for i ≥ cap[v]) on the *unbounded* tables.

// refNodeTables is the pre-change nodeTables: rows of width k+1.
type refNodeTables struct {
	x      []float64
	isBlue []bool
	splits [][]int32
}

// refGather is the pre-change serial SOAR-Gather, kept verbatim as the
// bitwise reference for the bounded engines.
func refGather(t *topology.Tree, load []int, avail []bool, k int) []refNodeTables {
	if k < 0 {
		k = 0
	}
	nodes := make([]refNodeTables, t.N())
	subLoad := t.SubtreeLoads(load)
	for _, v := range t.PostOrder() {
		children := make([]*refNodeTables, t.NumChildren(v))
		for i, c := range t.Children(v) {
			children[i] = &nodes[c]
		}
		nodes[v] = refComputeNode(t, v, load[v], subLoad[v] > 0, isAvail(avail, v), k, children)
	}
	return nodes
}

func refComputeNode(t *topology.Tree, v, load int, hasLoad, avail bool, k int, children []*refNodeTables) refNodeTables {
	depth := t.Depth(v)
	stride := k + 1
	nt := refNodeTables{
		x:      make([]float64, (depth+1)*stride),
		isBlue: make([]bool, (depth+1)*stride),
	}
	bsend := 0.0
	if hasLoad {
		bsend = 1.0
	}
	if len(children) == 0 {
		for l := 0; l <= depth; l++ {
			rho := t.RhoUp(v, l)
			red := rho * float64(load)
			blue := rho * bsend
			nt.x[l*stride] = red
			for i := 1; i <= k; i++ {
				idx := l*stride + i
				if avail && blue < red {
					nt.x[idx] = blue
					nt.isBlue[idx] = true
				} else {
					nt.x[idx] = red
				}
			}
		}
		return nt
	}

	nt.splits = make([][]int32, len(children)-1)
	for m := range nt.splits {
		nt.splits[m] = make([]int32, 2*(depth+1)*stride)
	}
	yr := make([]float64, stride)
	yb := make([]float64, stride)
	newYR := make([]float64, stride)
	newYB := make([]float64, stride)
	for l := 0; l <= depth; l++ {
		rho := t.RhoUp(v, l)
		c1 := children[0]
		for i := 0; i <= k; i++ {
			yr[i] = c1.x[(l+1)*stride+i] + rho*float64(load)
			if avail && i >= 1 {
				yb[i] = c1.x[1*stride+(i-1)] + rho*bsend
			} else {
				yb[i] = math.Inf(1)
			}
		}
		for m := 1; m < len(children); m++ {
			cm := children[m]
			xBlue := cm.x[1*stride : 1*stride+stride]
			xRed := cm.x[(l+1)*stride : (l+1)*stride+stride]
			for i := 0; i <= k; i++ {
				bestR, argR := math.Inf(1), 0
				bestB, argB := math.Inf(1), 0
				for j := 0; j <= i; j++ {
					if c := yr[i-j] + xRed[j]; c < bestR {
						bestR, argR = c, j
					}
					if c := yb[i-j] + xBlue[j]; c < bestB {
						bestB, argB = c, j
					}
				}
				newYR[i], newYB[i] = bestR, bestB
				sp := nt.splits[m-1]
				sp[(0*(depth+1)+l)*stride+i] = int32(argR)
				sp[(1*(depth+1)+l)*stride+i] = int32(argB)
			}
			yr, newYR = newYR, yr
			yb, newYB = newYB, yb
		}
		for i := 0; i <= k; i++ {
			idx := l*stride + i
			if yb[i] < yr[i] {
				nt.x[idx] = yb[i]
				nt.isBlue[idx] = true
			} else {
				nt.x[idx] = yr[i]
			}
		}
	}
	return nt
}

// refColorPhase is the pre-change SOAR-Color over full-width tables.
func refColorPhase(t *topology.Tree, nodes []refNodeTables, k int) []bool {
	blue := make([]bool, t.N())
	stride := k + 1
	type frame struct{ v, i, l int }
	stack := []frame{{t.Root(), k, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nt := &nodes[f.v]
		isBlue := nt.isBlue[f.l*stride+f.i]
		blue[f.v] = isBlue
		children := t.Children(f.v)
		if len(children) == 0 {
			continue
		}
		colorIdx, childL := 0, f.l+1
		if isBlue {
			colorIdx, childL = 1, 1
		}
		depth := t.Depth(f.v)
		remaining := f.i
		budgets := make([]int, len(children))
		for m := len(children) - 1; m >= 1; m-- {
			j := int(nt.splits[m-1][(colorIdx*(depth+1)+f.l)*stride+remaining])
			budgets[m] = j
			remaining -= j
		}
		if isBlue {
			remaining--
		}
		budgets[0] = remaining
		for m, c := range children {
			stack = append(stack, frame{c, budgets[m], childL})
		}
	}
	return blue
}

// boundedInstance draws a φ-BIC instance whose k and Λ sweep the corner
// cases the clamping must survive: k = 0, k ≥ n, Λ = everything,
// Λ = nothing, and sparse Λ.
func boundedInstance(rng *rand.Rand) (*topology.Tree, []int, []bool, int) {
	n := 1 + rng.Intn(40)
	parent := make([]int, n)
	omega := make([]float64, n)
	parent[0] = topology.NoParent
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	for v := 0; v < n; v++ {
		omega[v] = []float64{0.5, 1, 2, 4}[rng.Intn(4)]
	}
	t := topology.MustNew(parent, omega)
	loads := make([]int, n)
	for v := 0; v < n; v++ {
		loads[v] = rng.Intn(6)
	}
	var avail []bool
	switch rng.Intn(4) {
	case 0: // nil: everything available
	case 1: // nothing available
		avail = make([]bool, n)
	default: // sparse
		avail = make([]bool, n)
		for v := 0; v < n; v++ {
			avail[v] = rng.Intn(3) != 0
		}
	}
	var k int
	switch rng.Intn(4) {
	case 0:
		k = 0
	case 1:
		k = n + rng.Intn(5) // k ≥ n: caps clamp at subtree sizes
	default:
		k = rng.Intn(8)
	}
	return t, loads, avail, k
}

// TestBoundedBitwiseMatchesUnboundedReference is the acceptance check of
// the effective-budget optimization: for every engine, every table cell
// X_v(ℓ, i), every color flag and the final placement must equal the
// pre-change unbounded DP bit for bit — not approximately, exactly.
func TestBoundedBitwiseMatchesUnboundedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 120; trial++ {
		tr, loads, avail, k := boundedInstance(rng)
		ref := refGather(tr, loads, avail, k)
		refBlue := refColorPhase(tr, ref, max(k, 0))

		tb := Gather(tr, loads, avail, k)
		caps := EffectiveCaps(tr, avail, k)
		stride := max(k, 0) + 1
		for v := 0; v < tr.N(); v++ {
			if tb.Cap(v) != caps[v] {
				t.Fatalf("trial %d: Cap(%d) = %d, EffectiveCaps %d", trial, v, tb.Cap(v), caps[v])
			}
			for l := 0; l <= tr.Depth(v); l++ {
				for i := 0; i < stride; i++ {
					if got, want := tb.X(v, l, i), ref[v].x[l*stride+i]; got != want {
						t.Fatalf("trial %d: X_%d(%d,%d) = %v, unbounded %v", trial, v, l, i, got, want)
					}
					if got, want := tb.Blue(v, l, i), ref[v].isBlue[l*stride+i]; got != want {
						t.Fatalf("trial %d: Blue_%d(%d,%d) = %v, unbounded %v", trial, v, l, i, got, want)
					}
				}
			}
		}

		check := func(name string, blue []bool) {
			t.Helper()
			for v := range refBlue {
				if blue[v] != refBlue[v] {
					t.Fatalf("trial %d: %s placement differs from unbounded reference at switch %d", trial, name, v)
				}
			}
		}
		blue, _ := ColorPhase(tb)
		check("serial", blue)
		check("parallel", SolveParallel(tr, loads, avail, k, 4).Blue)
		check("distributed", SolveDistributed(tr, loads, avail, k).Blue)
		check("compact", SolveCompact(tr, loads, avail, k).Blue)
		inc := NewIncremental(tr, loads, avail, k)
		check("incremental", inc.Solve().Blue)
	}
}

// TestQuickCapInvariant checks, on the *unbounded* tables, the property
// the clamped storage relies on: X_v(ℓ, i) == X_v(ℓ, cap[v]) for every
// i ≥ cap[v] = min(k, |T_v ∩ Λ|), bitwise, and likewise for the color
// flag. (Checking it on the bounded tables would be a tautology — their
// accessor clamps — so the reference engine supplies full-width rows.)
func TestQuickCapInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, loads, avail, k := boundedInstance(rng)
		if k < 0 {
			k = 0
		}
		caps := EffectiveCaps(tr, avail, k)
		ref := refGather(tr, loads, avail, k)
		stride := k + 1
		for v := 0; v < tr.N(); v++ {
			for l := 0; l <= tr.Depth(v); l++ {
				base := ref[v].x[l*stride+caps[v]]
				baseBlue := ref[v].isBlue[l*stride+caps[v]]
				for i := caps[v]; i <= k; i++ {
					if ref[v].x[l*stride+i] != base || ref[v].isBlue[l*stride+i] != baseBlue {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEffectiveCaps pins down the cap definition against a direct
// subtree count.
func TestQuickEffectiveCaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, _, avail, k := boundedInstance(rng)
		if k < 0 {
			k = 0
		}
		caps := EffectiveCaps(tr, avail, k)
		sizes := tr.SubtreeSizes()
		for v := 0; v < tr.N(); v++ {
			cnt := 0
			for u := 0; u < tr.N(); u++ {
				if isAvail(avail, u) && inSubtree(tr, v, u) {
					cnt++
				}
			}
			if caps[v] != min(k, cnt) {
				return false
			}
			if caps[v] > sizes[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func inSubtree(t *topology.Tree, root, v int) bool {
	for {
		if v == root {
			return true
		}
		if v == t.Root() {
			return false
		}
		v = t.Parent(v)
	}
}

// TestEnginesMatchBruteForce certifies every bounded engine against an
// exhaustive subset enumeration on small instances: the DP cost must
// equal the true optimum, and each returned placement must achieve it.
func TestEnginesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	bf := placement.BruteForce{}
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(10)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(5)
			avail[v] = rng.Intn(4) != 0
		}
		k := rng.Intn(n + 2) // includes k = 0 and k > n
		_, want := bf.Search(tr, loads, avail, k)

		inc := NewIncremental(tr, loads, avail, k)
		for name, res := range map[string]Result{
			"serial":      Solve(tr, loads, avail, k),
			"parallel":    SolveParallel(tr, loads, avail, k, 3),
			"distributed": SolveDistributed(tr, loads, avail, k),
			"compact":     SolveCompact(tr, loads, avail, k),
			"incremental": inc.Solve(),
		} {
			if math.Abs(res.Cost-want) > 1e-9 {
				t.Fatalf("trial %d (n=%d k=%d): %s φ=%v, brute force φ=%v", trial, n, k, name, res.Cost, want)
			}
			if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s placement costs %v, reported %v", trial, name, sim, res.Cost)
			}
		}
	}
}
