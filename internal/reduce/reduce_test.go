package reduce

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/topology"
)

func TestFigure1AllRedAllBlue(t *testing.T) {
	tr, loads := paper.Figure1()
	allRed := make([]bool, tr.N())
	if got := TotalMessages(tr, loads, allRed); got != 14 {
		t.Fatalf("Fig. 1 all-red messages = %d, want 14", got)
	}
	allBlue := []bool{true, true, true, true, true}
	if got := TotalMessages(tr, loads, allBlue); got != 5 {
		t.Fatalf("Fig. 1 all-blue messages = %d, want 5", got)
	}
}

func TestFigure1PerEdgeCounts(t *testing.T) {
	tr, loads := paper.Figure1()
	counts := MessageCounts(tr, loads, make([]bool, tr.N()))
	// Edge above v: r→d carries 6; switch 1 carries 2; switch 2 carries 3;
	// switch 3 carries 1; switch 4 carries 2 (paper Fig. 1a).
	want := []int64{6, 2, 3, 1, 2}
	for v, w := range want {
		if counts[v] != w {
			t.Fatalf("edge above %d carries %d, want %d (all %v)", v, counts[v], w, counts)
		}
	}
}

func TestFigure2StrategyCosts(t *testing.T) {
	tr, loads := paper.Figure2()
	cases := []struct {
		name string
		blue []bool
		want float64
	}{
		{"all-red", []bool{false, false, false, false, false, false, false}, 51},
		{"top (Fig 2a)", []bool{true, false, true, false, false, false, false}, 27},
		{"max (Fig 2b)", []bool{false, false, false, false, true, true, false}, 24},
		{"level (Fig 2c)", []bool{false, true, true, false, false, false, false}, 21},
		{"soar (Fig 2d)", []bool{false, false, true, false, true, false, false}, 20},
		{"all-blue", []bool{true, true, true, true, true, true, true}, 7},
	}
	for _, tc := range cases {
		if got := Utilization(tr, loads, tc.blue); got != tc.want {
			t.Errorf("%s: φ = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFigure3OptimalCosts(t *testing.T) {
	tr, loads := paper.Figure2()
	// The unique optima shown in Figs. 3b and 3c.
	k2 := []bool{false, false, true, false, true, false, false}
	if got := Utilization(tr, loads, k2); got != 20 {
		t.Fatalf("k=2 optimum φ = %v, want 20", got)
	}
	k3 := []bool{false, false, false, false, true, true, true}
	if got := Utilization(tr, loads, k3); got != 15 {
		t.Fatalf("k=3 optimum φ = %v, want 15", got)
	}
	k4 := []bool{false, true, false, false, true, true, true}
	if got := Utilization(tr, loads, k4); got != 11 {
		t.Fatalf("k=4 optimum φ = %v, want 11", got)
	}
	k1 := []bool{true, false, false, false, false, false, false}
	if got := Utilization(tr, loads, k1); got != 35 {
		t.Fatalf("k=1 optimum φ = %v, want 35", got)
	}
}

func TestLemma42BarrierEquivalence(t *testing.T) {
	// Eq. 1 and Eq. 3 must agree for arbitrary trees, rates, loads and
	// colorings, including zero loads.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		parent := make([]int, n)
		omega := make([]float64, n)
		parent[0] = topology.NoParent
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		for v := 0; v < n; v++ {
			omega[v] = []float64{0.5, 1, 2, 4}[rng.Intn(4)]
		}
		tr := topology.MustNew(parent, omega)
		loads := make([]int, n)
		blue := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(5)
			blue[v] = rng.Intn(3) == 0
		}
		a := Utilization(tr, loads, blue)
		b := UtilizationBarrier(tr, loads, blue)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("trial %d: Eq.1 gives %v, Eq.3 gives %v\nparents=%v loads=%v blue=%v",
				trial, a, b, parent, loads, blue)
		}
	}
}

func TestZeroLoadSubtreeSendsNothing(t *testing.T) {
	// A blue switch over an empty subtree must not emit a message.
	tr := topology.Path(3) // 0-1-2, loads only possibly at 2
	loads := []int{0, 0, 0}
	blue := []bool{false, true, false}
	if got := TotalMessages(tr, loads, blue); got != 0 {
		t.Fatalf("empty reduce sent %d messages, want 0", got)
	}
	if got := Utilization(tr, loads, blue); got != 0 {
		t.Fatalf("empty reduce φ = %v, want 0", got)
	}
}

func TestBlueNeverWorseThanRed(t *testing.T) {
	// Turning any single switch blue never increases φ.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		blue := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(4)
			blue[v] = rng.Intn(4) == 0
		}
		base := Utilization(tr, loads, blue)
		for v := 0; v < n; v++ {
			if blue[v] {
				continue
			}
			blue[v] = true
			if got := Utilization(tr, loads, blue); got > base+1e-12 {
				t.Fatalf("making %d blue increased φ from %v to %v", v, base, got)
			}
			blue[v] = false
		}
	}
}

func TestUtilizationWeightsByRho(t *testing.T) {
	// Doubling every rate halves φ.
	tr, loads := paper.Figure2()
	fast := topology.ApplyRates(tr, topology.RatesConstant(2))
	blue := make([]bool, tr.N())
	if got, want := Utilization(fast, loads, blue), 51.0/2; got != want {
		t.Fatalf("φ at rate 2 = %v, want %v", got, want)
	}
}

func TestCountBlue(t *testing.T) {
	if got := CountBlue([]bool{true, false, true}); got != 2 {
		t.Fatalf("CountBlue = %d, want 2", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	tr := topology.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	Utilization(tr, []int{1}, []bool{false, false, false})
}
