package core

import (
	"math"

	"soar/internal/topology"
)

// SolveCompact is the low-memory variant of Solve: SOAR-Gather stores
// only the X tables (no per-child argmin breadcrumbs), and SOAR-Color
// re-derives each visited node's budget splits for the single ℓ* it is
// assigned. This trades O(Σ_v C(v)·h·k) split storage for an extra
// O(C(v)·k²) of arithmetic per *visited* node during coloring — the
// memory/time design choice recorded in DESIGN.md and measured by
// BenchmarkGatherMemory. Results are identical to Solve.
func SolveCompact(t *topology.Tree, load []int, avail []bool, k int) Result {
	tb := GatherCompact(t, load, avail, k)
	blue, cost := ColorPhaseCompact(tb, load, avail)
	return Result{Blue: blue, Cost: cost}
}

// GatherCompact runs SOAR-Gather without recording split breadcrumbs.
// The returned tables support X, Blue and Optimum, but ColorPhase
// requires breadcrumbs — use ColorPhaseCompact instead.
func GatherCompact(t *topology.Tree, load []int, avail []bool, k int) *Tables {
	validate(t, load, avail)
	if k < 0 {
		k = 0
	}
	tb := &Tables{
		t:     t,
		load:  load,
		k:     k,
		nodes: make([]nodeTables, t.N()),
	}
	subLoad := t.SubtreeLoads(load)
	for _, v := range t.PostOrder() {
		tb.nodes[v] = computeNode(t, v, load[v], subLoad[v] > 0, isAvail(avail, v), k, childTables(tb, v), false)
	}
	return tb
}

// ColorPhaseCompact assigns colors from breadcrumb-free tables: at every
// visited node it recomputes the Y merge rows for its single assigned ℓ*
// and walks them backwards exactly as the paper's mSplit does.
func ColorPhaseCompact(tb *Tables, load []int, avail []bool) ([]bool, float64) {
	t := tb.t
	k := tb.k
	stride := k + 1
	subLoad := t.SubtreeLoads(load)
	blue := make([]bool, t.N())

	type frame struct {
		v, i, l int
	}
	stack := []frame{{t.Root(), k, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := f.v
		children := t.Children(v)
		isBlue := tb.nodes[v].isBlue[f.l*stride+f.i]
		blue[v] = isBlue
		if len(children) == 0 {
			continue
		}

		// Rebuild Y^m rows for this node's (ℓ*, color), m = 1..C.
		rho := t.RhoUp(v, f.l)
		bsend := 0.0
		if subLoad[v] > 0 {
			bsend = 1
		}
		rows := make([][]float64, len(children)) // rows[m-1][i] = Y^m for v's color
		childXRow := func(m int) []float64 {
			c := children[m]
			if isBlue {
				return tb.nodes[c].x[1*stride : 1*stride+stride]
			}
			return tb.nodes[c].x[(f.l+1)*stride : (f.l+1)*stride+stride]
		}
		first := make([]float64, stride)
		x1 := childXRow(0)
		for i := 0; i <= k; i++ {
			if isBlue {
				if i >= 1 {
					first[i] = x1[i-1] + rho*bsend
				} else {
					first[i] = math.Inf(1)
				}
			} else {
				first[i] = x1[i] + rho*float64(load[v])
			}
		}
		rows[0] = first
		for m := 1; m < len(children); m++ {
			prev := rows[m-1]
			xm := childXRow(m)
			row := make([]float64, stride)
			for i := 0; i <= k; i++ {
				best := math.Inf(1)
				for j := 0; j <= i; j++ {
					if c := prev[i-j] + xm[j]; c < best {
						best = c
					}
				}
				row[i] = best
			}
			rows[m] = row
		}

		// mSplit (paper Alg. 4 lines 18-22), children in reverse order.
		remaining := f.i
		childL := f.l + 1
		if isBlue {
			childL = 1
		}
		for m := len(children) - 1; m >= 1; m-- {
			prev := rows[m-1]
			xm := childXRow(m)
			bestJ, bestC := 0, math.Inf(1)
			for j := 0; j <= remaining; j++ {
				if c := prev[remaining-j] + xm[j]; c < bestC {
					bestC, bestJ = c, j
				}
			}
			stack = append(stack, frame{children[m], bestJ, childL})
			remaining -= bestJ
		}
		if isBlue {
			remaining--
		}
		stack = append(stack, frame{children[0], remaining, childL})
	}
	return blue, tb.Optimum()
}
