// Package hotpath is golden-test input for the hotpath analyzer: a
// //soar:hotpath function must not allocate, spawn, or call anything
// outside the annotated/allowlisted set, and //soar:coldpath waives
// exactly one statement.
package hotpath

import "math"

func helper(x int) int { return x + 1 } //soar:hotpath

// cold is deliberately unannotated.
func cold(x int) int { return x * 2 }

// sink accepts an interface, so passing a concrete value boxes it.
//
//soar:hotpath
func sink(v any) { _ = v }

// sum is clean: annotated callees, allowlisted stdlib, guard panic.
//
//soar:hotpath
func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += math.Sqrt(x)
	}
	if math.IsNaN(total) {
		panic("NaN total") // guard position: auto-cold
	}
	return total
}

// grows waives its slow branch; the fast path stays checked.
//
//soar:hotpath
func grows(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //soar:coldpath storage growth
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = helper(i)
	}
	return buf
}

//soar:hotpath
func bad(n int) int {
	buf := make([]int, n) // want "make allocates"
	total := cold(n)      // want "calls example.com/hotpath.cold, which is not annotated //soar:hotpath"
	sink(n)               // want "argument boxes int into"
	go helper(n)          // want "go statement"
	for _, x := range buf {
		total += x
	}
	return total
}

//soar:hotpath
func worse(s []byte) string {
	defer helper(0)  // want "defer"
	return string(s) // want "string conversion from slice allocates"
}

// histo models a metrics histogram whose record path must stay
// allocation-free — the contract the obs package's annotations
// enforce. observe increments in place and is clean; observeSnapshot
// materializes a copy of the bucket vector per observation, the exact
// regression that would silently void the zero-alloc scrape-path
// guarantee.
type histo struct {
	bounds []float64
	counts []uint64
}

//soar:hotpath
func (h *histo) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
}

//soar:hotpath
func (h *histo) observeSnapshot(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	snap := make([]uint64, len(h.counts)) // want "make allocates"
	copy(snap, h.counts)
	snap[i]++
	h.counts = snap
}
