package main

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"soar/internal/topology"
)

// capsProfileHelp documents the -caps flag's profile grammar, shared by
// the place and sched subcommands.
const capsProfileHelp = "per-switch capacity profile: uniform:C | tiered:C0,C1,... (root level first, last extends) | tor:P,C (fraction P of leaves, capacity C) | powerlaw:MAX,ALPHA (empty = classic uniform-1 model)"

// parseCapsProfile resolves a -caps profile spec against a concrete
// tree. An empty spec returns nil (the classic uniform model). Malformed
// specs return an error — they must never panic, since they carry raw
// user input (the topology builders' panics are for programmer errors).
func parseCapsProfile(spec string, t *topology.Tree, rng *rand.Rand) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	name, args, _ := strings.Cut(spec, ":")
	switch name {
	case "uniform":
		c, err := strconv.Atoi(args)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("-caps uniform:C needs an integer C ≥ 0, got %q", args)
		}
		return topology.CapsUniform(t, c), nil
	case "tiered":
		if args == "" {
			return nil, fmt.Errorf("-caps tiered needs at least one level capacity")
		}
		parts := strings.Split(args, ",")
		byLevel := make([]int, len(parts))
		for i, p := range parts {
			c, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || c < 0 {
				return nil, fmt.Errorf("-caps tiered level %d: need an integer ≥ 0, got %q", i, p)
			}
			byLevel[i] = c
		}
		return topology.CapsTiered(t, byLevel...), nil
	case "tor":
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-caps tor:P,C needs exactly two arguments, got %q", args)
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("-caps tor fraction must be in [0, 1], got %q", parts[0])
		}
		c, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("-caps tor capacity must be an integer ≥ 1, got %q", parts[1])
		}
		return topology.CapsTorOnly(t, c, p, rng), nil
	case "powerlaw":
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-caps powerlaw:MAX,ALPHA needs exactly two arguments, got %q", args)
		}
		max, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || max < 1 {
			return nil, fmt.Errorf("-caps powerlaw max must be an integer ≥ 1, got %q", parts[0])
		}
		alpha, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil || alpha <= 0 {
			return nil, fmt.Errorf("-caps powerlaw alpha must be > 0, got %q", parts[1])
		}
		return topology.CapsPowerLaw(t, max, alpha, rng), nil
	default:
		return nil, fmt.Errorf("unknown -caps profile %q (want uniform, tiered, tor or powerlaw)", name)
	}
}

// capsSummary is a one-line description of a resolved profile for the
// command banners: total units, available switches, weight range.
func capsSummary(caps []int) string {
	if caps == nil {
		return "uniform (every switch, weight 1)"
	}
	total, avail, maxC := 0, 0, 0
	minC := -1
	for _, c := range caps {
		total += c
		if c > 0 {
			avail++
			if minC < 0 || c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
	}
	if avail == 0 {
		return "no switch may aggregate"
	}
	return fmt.Sprintf("%d/%d switches available, weights %d..%d, %d units total", avail, len(caps), minC, maxC, total)
}
