package core

import "soar/internal/topology"

// This file owns the structure-of-arrays slab layout behind the DP
// engines (see DESIGN.md "SoA merge kernel").
//
// Layout. One Gather run stores every switch's tables in a handful of
// contiguous slabs (one float64 slab for X values, one bool slab for
// color flags, one int32 slab for split breadcrumbs), carved by
// precomputed per-switch offsets. Offsets are assigned in LEVEL ORDER
// (BFS): all switches of tree level d occupy one contiguous segment of
// each slab, ordered left to right, and segments stack root-down:
//
//	x: [lvl 0 | lvl 1        | lvl 2                  | ... ]
//	        └ per switch: rows ℓ = 0..depth, each cap(v)+1 wide
//
// Within a switch the row stride is its effective cap width cap(v)+1
// (EffectiveCaps), NOT the global k+1: rows are dense, and a level's
// segment is the concatenation of its switches' cap-width-strided
// windows. The merge kernel (kernel.go) always streams one child row
// against one running row, so what it needs from the layout is exactly
// what level order provides: the rows of the switches merged together
// (siblings, one level) are adjacent in memory, and the bottom-up sweep
// walks each slab back to front instead of hopping in node-id order.
//
// Offsets and sizes are computed in int (int64 on 64-bit platforms) from
// int64-accumulated effective caps, so the layout arithmetic cannot wrap
// even at MaxCapacity weights; the 386 CI lane pins the 32-bit behavior.

// levelOrderOffsets assigns every switch's slab windows in BFS order:
// xOff[v] is the start of v's x/isBlue window (rows*(cap+1) cells wide),
// spOff/hdOff the split-slab and split-header windows when recordSplits
// is set (else nil). The final slab sizes sit at index n.
func levelOrderOffsets(t *topology.Tree, caps []int, recordSplits bool) (xOff, spOff, hdOff []int) {
	n := t.N()
	xOff = make([]int, n+1)
	if recordSplits {
		spOff = make([]int, n+1)
		hdOff = make([]int, n+1)
	}
	// Prefix sums in visit order, scattered to per-node indices: v's
	// window starts where the previous BFS switch's window ended.
	x, sp, hd := 0, 0, 0
	for _, v := range t.BFSOrder() {
		rows := t.Depth(v) + 1
		w := caps[v] + 1
		xOff[v] = x
		x += rows * w
		if recordSplits {
			merges := t.NumChildren(v) - 1
			if merges < 0 {
				merges = 0
			}
			spOff[v] = sp
			hdOff[v] = hd
			sp += merges * 2 * rows * w
			hd += merges
		}
	}
	xOff[n] = x
	if recordSplits {
		spOff[n] = sp
		hdOff[n] = hd
	}
	return xOff, spOff, hdOff
}

// slabAlloc carves immutable class-table storage for a Memo out of
// chunked slabs instead of one allocation per table: classes interned
// together land adjacent in memory (the warm working set of a symmetric
// tree is a few dense slabs), and a cache miss costs a bump-pointer
// slice most of the time. Chunks are never reused — Reset drops the
// references and lets live aliased tables keep their chunks alive —
// so carved windows keep the memo's immutability contract.
type slabAlloc struct {
	f64 []float64
	b   []bool
	i32 []int32
}

// slabChunk is the minimum chunk size, in elements. Tables wider than a
// chunk get a dedicated allocation of their exact size.
const slabChunk = 16384

// floats carves an all-zero float64 window of n cells.
//
//soar:hotpath
func (s *slabAlloc) floats(n int) []float64 {
	if len(s.f64)+n > cap(s.f64) {
		s.f64 = make([]float64, 0, max(n, slabChunk)) //soar:coldpath new chunk
	}
	lo := len(s.f64)
	s.f64 = s.f64[: lo+n : cap(s.f64)]
	return s.f64[lo : lo+n : lo+n]
}

// bools carves an all-false bool window of n cells.
//
//soar:hotpath
func (s *slabAlloc) bools(n int) []bool {
	if len(s.b)+n > cap(s.b) {
		s.b = make([]bool, 0, max(n, slabChunk)) //soar:coldpath new chunk
	}
	lo := len(s.b)
	s.b = s.b[: lo+n : cap(s.b)]
	return s.b[lo : lo+n : lo+n]
}

// int32s carves an all-zero int32 window of n cells.
//
//soar:hotpath
func (s *slabAlloc) int32s(n int) []int32 {
	if len(s.i32)+n > cap(s.i32) {
		s.i32 = make([]int32, 0, max(n, slabChunk)) //soar:coldpath new chunk
	}
	lo := len(s.i32)
	s.i32 = s.i32[: lo+n : cap(s.i32)]
	return s.i32[lo : lo+n : lo+n]
}

// newNodeStorageSlab is newNodeStorage carving from a slab allocator:
// the memo's class tables are written once (computeNode overwrites
// every cell) and immutable afterwards, so they can share chunks.
func newNodeStorageSlab(s *slabAlloc, depth, capv, numChildren int) nodeTables {
	w := capv + 1
	sz := (depth + 1) * w
	nt := nodeTables{
		cap:    capv,
		x:      s.floats(sz),
		isBlue: s.bools(sz),
	}
	if numChildren > 1 {
		nt.splits = make([][]int32, numChildren-1)
		rowLen := 2 * sz
		for m := range nt.splits {
			nt.splits[m] = s.int32s(rowLen)
		}
	}
	return nt
}
