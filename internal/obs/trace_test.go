package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTraceRecordDump(t *testing.T) {
	tr := NewTrace(64)
	solve := tr.Op("sched.solve")
	commit := tr.Op("sched.commit")
	if again := tr.Op("sched.solve"); again != solve {
		t.Fatalf("Op re-interned sched.solve: %d then %d", solve, again)
	}
	start := time.Unix(1700000000, 0)
	tr.Record(solve, start, 5*time.Millisecond, 4, 0)
	tr.Record(commit, start.Add(5*time.Millisecond), time.Millisecond, 4, 12)

	spans := tr.Dump(10)
	if len(spans) != 2 {
		t.Fatalf("dumped %d spans, want 2", len(spans))
	}
	// Newest first.
	if spans[0].Op != "sched.commit" || spans[1].Op != "sched.solve" {
		t.Fatalf("span order = %q, %q", spans[0].Op, spans[1].Op)
	}
	if spans[1].Dur != 5*time.Millisecond || spans[1].V1 != 4 {
		t.Errorf("solve span = %+v", spans[1])
	}
	if !spans[1].Start.Equal(start) {
		t.Errorf("solve start = %v, want %v", spans[1].Start, start)
	}
}

func TestTraceRingWraps(t *testing.T) {
	tr := NewTrace(64) // minimum ring size
	op := tr.Op("x")
	for i := 0; i < 200; i++ {
		tr.Record(op, time.Unix(0, int64(i)), 0, int64(i), 0)
	}
	spans := tr.Dump(0)
	if len(spans) != 64 {
		t.Fatalf("dumped %d spans after wrap, want 64", len(spans))
	}
	if spans[0].V1 != 199 {
		t.Errorf("newest span v1 = %d, want 199", spans[0].V1)
	}
	if spans[len(spans)-1].V1 != 199-63 {
		t.Errorf("oldest span v1 = %d, want %d", spans[len(spans)-1].V1, 199-63)
	}
	if got := tr.Dump(5); len(got) != 5 {
		t.Errorf("Dump(5) returned %d spans", len(got))
	}
}

// TestTraceConcurrent drives recorders and dumpers in parallel; under
// -race this proves the seqlock ring is data-race-free, and in any
// mode it proves dumped spans are never torn (op ids out of range,
// sequence numbers from the future).
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(128)
	ops := []OpID{tr.Op("a"), tr.Op("b"), tr.Op("c")}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Record(ops[i%len(ops)], time.Unix(0, int64(i)), time.Duration(i), int64(i), int64(g))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		for _, ev := range tr.Dump(64) {
			if ev.Op != "a" && ev.Op != "b" && ev.Op != "c" {
				t.Fatalf("torn span: op %q", ev.Op)
			}
			if ev.Seq == 0 {
				t.Fatal("torn span: zero sequence")
			}
		}
	}
	close(stop)
	wg.Wait()
}
