package sched

import "time"

// solveBatched is the Config.BatchSolve solve phase: instead of fanning
// the batch's placements out over per-worker incremental engines, the
// dispatcher groups them by budget and runs each group through the
// fused batch engine (core.BatchSolver) in one pass over the tree. All
// groups solve against the same quiescent availability snapshot the
// worker path would have used, so commit-phase semantics (arrival
// order, conflict re-solves) are unchanged, and the batch engine's
// bitwise-identity contract makes the placements exactly those of the
// per-engine path. Runs on the dispatcher goroutine; the marshalling
// buffers are dispatcher-owned and reused, so a steady stream of
// batches allocates nothing.
//
//soar:hotpath
func (s *Scheduler) solveBatched() {
	avail := s.ledger.Avail()
	n := s.t.N()
	s.bks = s.bks[:0]
	for _, r := range s.places {
		seen := false
		for _, k := range s.bks {
			if k == r.k {
				seen = true
				break
			}
		}
		if !seen {
			s.bks = append(s.bks, r.k)
		}
	}
	for _, k := range s.bks {
		s.bgrp, s.bload, s.bblue = s.bgrp[:0], s.bload[:0], s.bblue[:0]
		for _, r := range s.places {
			if r.k != k {
				continue
			}
			if cap(r.blue) < n {
				r.blue = make([]bool, n) //soar:coldpath first use of a pooled request
			}
			r.blue = r.blue[:n]
			s.bgrp = append(s.bgrp, r)
			s.bload = append(s.bload, r.load)
			s.bblue = append(s.bblue, r.blue)
		}
		if cap(s.bcost) < len(s.bgrp) {
			s.bcost = make([]float64, len(s.bgrp)) //soar:coldpath group grew
		}
		costs := s.bcost[:len(s.bgrp)]
		t0 := time.Now()
		s.bsol.Solve(s.bload, avail, k, s.bblue, costs)
		for i, r := range s.bgrp {
			r.phi = costs[i]
			r.allRed = s.allRed(r.load)
			s.met.noteSolve(t0, int64(r.k))
		}
	}
	// Keep no references to pooled requests or borrowed load slices past
	// the batch (the full capacity: earlier, larger groups may have
	// written beyond the last group's length): the submitters reclaim
	// them once done is signalled.
	clear(s.bgrp[:cap(s.bgrp)])
	clear(s.bload[:cap(s.bload)])
	clear(s.bblue[:cap(s.bblue)])
}
