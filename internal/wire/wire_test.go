package wire

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write(%#v): %v", m, err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read after %#v: %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after read", buf.Len())
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	got := roundTrip(t, &Hello{Child: 12345}).(*Hello)
	if got.Child != 12345 {
		t.Fatalf("child %d", got.Child)
	}
}

func TestColorRoundTrip(t *testing.T) {
	got := roundTrip(t, &Color{Budget: 7, L: 3}).(*Color)
	if got.Budget != 7 || got.L != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestReduceDoneRoundTrip(t *testing.T) {
	m := &ReduceDone{Child: 9, Messages: 1 << 40}
	m.SetPhi(123.456)
	got := roundTrip(t, m).(*ReduceDone)
	if got.Child != 9 || got.Messages != 1<<40 || got.Phi() != 123.456 {
		t.Fatalf("got %+v phi=%v", got, got.Phi())
	}
}

func TestGatherRoundTrip(t *testing.T) {
	m := &Gather{Child: 3, Rows: 2, Cols: 3, X: []float64{0, 1.5, math.Inf(1), -2, 51, 35}}
	got := roundTrip(t, m).(*Gather)
	if got.Child != 3 || got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("header %+v", got)
	}
	for i, x := range m.X {
		if got.X[i] != x {
			t.Fatalf("X[%d] = %v, want %v", i, got.X[i], x)
		}
	}
}

func TestGatherRoundTripQuick(t *testing.T) {
	f := func(child uint32, rows, cols uint8, vals []float64) bool {
		r := uint32(rows%8) + 1
		c := uint32(cols%8) + 1
		x := make([]float64, r*c)
		for i := range x {
			if i < len(vals) {
				x[i] = vals[i]
			}
		}
		m := &Gather{Child: child, Rows: r, Cols: c, X: x}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		g := got.(*Gather)
		if g.Child != child || g.Rows != r || g.Cols != c {
			return false
		}
		for i := range x {
			// NaN-safe bitwise comparison.
			if math.Float64bits(g.X[i]) != math.Float64bits(x[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{Child: 1},
		&Gather{Child: 1, Rows: 1, Cols: 2, X: []float64{3, 4}},
		&Color{Budget: 2, L: 1},
		&ReduceDone{Child: 1, Messages: 5},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d type %d, want %d", i, got.Type(), want.Type())
		}
	}
}

func TestReadTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Color{Budget: 1, L: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTyped[*Color](&buf); err != nil {
		t.Fatalf("ReadTyped[*Color]: %v", err)
	}
	if err := Write(&buf, &Hello{Child: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTyped[*Color](&buf); err == nil {
		t.Fatal("ReadTyped accepted the wrong type")
	}
}

func TestRejectsMalformedFrames(t *testing.T) {
	cases := map[string][]byte{
		"empty frame":  {0, 0, 0, 0},
		"unknown type": {0, 0, 0, 1, 99},
		"short hello":  {0, 0, 0, 3, byte(TypeHello), 1, 2},
		"huge frame":   {0xFF, 0xFF, 0xFF, 0xFF, byte(TypeHello)},
		"short color":  {0, 0, 0, 2, byte(TypeColor), 9},
	}
	for name, raw := range cases {
		if _, err := Read(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

func TestRejectsOversizeGatherDims(t *testing.T) {
	// A gather header claiming a huge table must be rejected before any
	// large allocation.
	var buf bytes.Buffer
	g := &Gather{Child: 1, Rows: 1, Cols: 1, X: []float64{1}}
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt Rows to a huge value; body length no longer matches.
	raw[9], raw[10] = 0xFF, 0xFF
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("accepted corrupted dimensions")
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Gather{Child: 1, Rows: 1, Cols: 1, X: []float64{7}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d bytes", cut, len(raw))
		}
	}
}

func TestWriteErrorPropagates(t *testing.T) {
	w := &failWriter{}
	if err := Write(w, &Hello{Child: 1}); err == nil || !strings.Contains(err.Error(), "wire:") {
		t.Fatalf("err = %v, want wrapped wire error", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
