package placement

import (
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func TestFigure2Baselines(t *testing.T) {
	tr, loads := paper.Figure2()
	cases := []struct {
		s    Strategy
		want float64
	}{
		{Top{}, 27},
		{Max{}, 24},
		{Level{}, 21},
		{AllRed{}, 51},
		{AllBlue{}, 7},
	}
	for _, tc := range cases {
		blue := tc.s.Place(tr, loads, nil, 2)
		if got := reduce.Utilization(tr, loads, blue); got != tc.want {
			t.Errorf("%s: φ = %v (blue %s), want %v", tc.s.Name(), got, String(blue), tc.want)
		}
	}
}

func TestTopPicksClosestToRoot(t *testing.T) {
	tr, loads := paper.Figure2()
	blue := Top{}.Place(tr, loads, nil, 3)
	// Root plus both mid switches.
	want := []bool{true, true, true, false, false, false, false}
	for v := range want {
		if blue[v] != want[v] {
			t.Fatalf("top k=3 picked %s, want root+mids", String(blue))
		}
	}
}

func TestMaxPicksLargestLoads(t *testing.T) {
	tr, loads := paper.Figure2()
	blue := Max{}.Place(tr, loads, nil, 2)
	if !blue[4] || !blue[5] || reduce.CountBlue(blue) != 2 {
		t.Fatalf("max k=2 picked %s, want switches 4 (load 6) and 5 (load 5)", String(blue))
	}
}

func TestLevelPicksWholeLevels(t *testing.T) {
	tr := topology.CompleteBinary(4) // 15 switches, levels 0..3
	loads := make([]int, tr.N())
	for _, k := range []int{1, 2, 4, 8} {
		blue := Level{}.Place(tr, loads, nil, k)
		if got := reduce.CountBlue(blue); got != k {
			t.Fatalf("level k=%d placed %d", k, got)
		}
		// All picked switches on one level.
		lvl := -1
		for v, b := range blue {
			if !b {
				continue
			}
			if lvl == -1 {
				lvl = tr.Depth(v) - 1
			} else if tr.Depth(v)-1 != lvl {
				t.Fatalf("level k=%d spans multiple levels: %s", k, String(blue))
			}
		}
	}
	// Non-power budget spills into the next level down.
	blue := Level{}.Place(tr, loads, nil, 3)
	if got := reduce.CountBlue(blue); got != 3 {
		t.Fatalf("level k=3 placed %d", got)
	}
	if !blue[1] || !blue[2] {
		t.Fatalf("level k=3 should include whole level 1, got %s", String(blue))
	}
}

func TestMaxDegreePicksHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := topology.ScaleFree(100, rng)
	loads := make([]int, tr.N())
	blue := MaxDegree{}.Place(tr, loads, nil, 3)
	minPicked := 1 << 30
	maxSkipped := 0
	for v := 0; v < tr.N(); v++ {
		if blue[v] && tr.Degree(v) < minPicked {
			minPicked = tr.Degree(v)
		}
		if !blue[v] && tr.Degree(v) > maxSkipped {
			maxSkipped = tr.Degree(v)
		}
	}
	if minPicked < maxSkipped {
		t.Fatalf("picked degree %d while skipping degree %d", minPicked, maxSkipped)
	}
}

func TestAvailabilityRespected(t *testing.T) {
	tr, loads := paper.Figure2()
	avail := []bool{false, true, false, true, false, true, false}
	for _, s := range []Strategy{Top{}, Max{}, Level{}, AllBlue{}, Greedy{}, Random{Rng: rand.New(rand.NewSource(1))}} {
		blue := s.Place(tr, loads, avail, 3)
		for v, b := range blue {
			if b && !avail[v] {
				t.Fatalf("%s picked unavailable switch %d", s.Name(), v)
			}
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	tr, loads := paper.Figure2()
	for _, s := range []Strategy{Top{}, Max{}, Level{}, Greedy{}, Random{Rng: rand.New(rand.NewSource(2))}} {
		for k := 0; k <= 8; k++ {
			blue := s.Place(tr, loads, nil, k)
			if got := reduce.CountBlue(blue); got > k {
				t.Fatalf("%s placed %d > k=%d", s.Name(), got, k)
			}
		}
	}
}

func TestGreedyAtLeastAsGoodAsNothing(t *testing.T) {
	tr, loads := paper.Figure2()
	for k := 1; k <= 4; k++ {
		g := Evaluate(Greedy{}, tr, loads, nil, k)
		red := Evaluate(AllRed{}, tr, loads, nil, k)
		if g > red {
			t.Fatalf("greedy k=%d worse than all-red: %v > %v", k, g, red)
		}
	}
}

func TestBruteForceFig3(t *testing.T) {
	tr, loads := paper.Figure2()
	bf := BruteForce{}
	want := map[int]float64{0: 51, 1: 35, 2: 20, 3: 15, 4: 11}
	for k, w := range want {
		_, cost := bf.Search(tr, loads, nil, k)
		if cost != w {
			t.Fatalf("brute force k=%d: φ=%v, want %v", k, cost, w)
		}
	}
}

func TestBruteForceUniqueOptimaFig3(t *testing.T) {
	// Paper: the optima for k=2 and k=3 are unique. ("at most k" allows
	// padding only if padding does not change φ; uniqueness here means a
	// unique minimal set, and since k equals the support size no padded
	// duplicates arise.)
	tr, loads := paper.Figure2()
	bf := BruteForce{}
	optima2, cost2 := bf.AllOptima(tr, loads, nil, 2, 1e-9)
	if cost2 != 20 || len(optima2) != 1 {
		t.Fatalf("k=2: %d optima at φ=%v, want unique at 20", len(optima2), cost2)
	}
	if !optima2[0][2] || !optima2[0][4] {
		t.Fatalf("k=2 optimum %s, want {2,4}", String(optima2[0]))
	}
	optima3, cost3 := bf.AllOptima(tr, loads, nil, 3, 1e-9)
	if cost3 != 15 || len(optima3) != 1 {
		t.Fatalf("k=3: %d optima at φ=%v, want unique at 15", len(optima3), cost3)
	}
	for _, v := range []int{4, 5, 6} {
		if !optima3[0][v] {
			t.Fatalf("k=3 optimum %s, want {4,5,6}", String(optima3[0]))
		}
	}
}

func TestFig3NonMonotoneBlueSets(t *testing.T) {
	// Paper Sec. 3: the optimal sets for increasing k are not monotone —
	// the unique k=2 optimum contains switch 2, the unique k=3 one does not.
	tr, loads := paper.Figure2()
	bf := BruteForce{}
	o2, _ := bf.AllOptima(tr, loads, nil, 2, 1e-9)
	o3, _ := bf.AllOptima(tr, loads, nil, 3, 1e-9)
	if !o2[0][2] {
		t.Fatal("k=2 optimum should contain switch 2")
	}
	if o3[0][2] {
		t.Fatal("k=3 optimum should not contain switch 2")
	}
}

func TestBruteForceGuard(t *testing.T) {
	tr := topology.CompleteBinary(5) // 31 > default 20 candidates
	defer func() {
		if recover() == nil {
			t.Fatal("expected MaxNodes panic")
		}
	}()
	BruteForce{}.Place(tr, make([]int, tr.N()), nil, 2)
}

func TestRandomIsReproducible(t *testing.T) {
	tr, loads := paper.Figure2()
	a := Random{Rng: rand.New(rand.NewSource(5))}.Place(tr, loads, nil, 3)
	b := Random{Rng: rand.New(rand.NewSource(5))}.Place(tr, loads, nil, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestNames(t *testing.T) {
	for _, s := range []Strategy{Top{}, Max{}, Level{}, AllRed{}, AllBlue{}, MaxDegree{}, Greedy{}, BruteForce{}, Random{}} {
		if s.Name() == "" {
			t.Fatalf("%T has empty name", s)
		}
	}
}
