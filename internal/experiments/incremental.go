package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/stats"
	"soar/internal/topology"
)

// ExtIncrementalConfig parameterizes the incremental-engine runtime
// experiment, the online companion to the paper's Fig. 9: instead of
// timing one from-scratch SOAR-Gather per instance, it times the
// steady-state cost of keeping a solution current under a stream of
// point updates (a leaf's load changes, a switch's capacity runs out),
// the regime of the paper's Sec. 5.2 online setting and of the authors'
// follow-up dynamic work (arXiv:2201.04344).
type ExtIncrementalConfig struct {
	// Sizes are BT network sizes (the Fig. 9 grid: 256..2048).
	Sizes []int
	// Ks are the budgets (the Fig. 9 grid: 4..128).
	Ks []int
	// Updates is the number of timed point updates per instance; each
	// update is flushed (Cost) before the next, so it measures the
	// unbatched worst case.
	Updates int
	// Reps averages over independent load vectors.
	Reps int
	Seed int64
}

// DefaultExtIncremental mirrors the Fig. 9 grid.
func DefaultExtIncremental() ExtIncrementalConfig {
	return ExtIncrementalConfig{
		Sizes:   []int{256, 512, 1024, 2048},
		Ks:      []int{4, 8, 16, 32, 64, 128},
		Updates: 64,
		Reps:    5,
		Seed:    4,
	}
}

// QuickExtIncremental is a reduced instance for tests.
func QuickExtIncremental() ExtIncrementalConfig {
	return ExtIncrementalConfig{Sizes: []int{64, 128}, Ks: []int{4, 8}, Updates: 8, Reps: 2, Seed: 4}
}

// ExtIncremental times a full SOAR-Gather against one flushed point
// update of the incremental engine on the same instances, and reports
// both times plus their ratio (the per-update speedup). As a built-in
// correctness guard it re-solves every drifted instance from scratch and
// fails if the engine's φ ever deviates.
func ExtIncremental(cfg ExtIncrementalConfig) (*Figure, error) {
	full := Subplot{Name: "full SOAR-Gather per solve", XLabel: "k", YLabel: "seconds"}
	incr := Subplot{Name: "incremental engine per update", XLabel: "k", YLabel: "seconds"}
	speedup := Subplot{Name: "speedup (full / incremental)", XLabel: "k", YLabel: "ratio"}
	xs := make([]float64, len(cfg.Ks))
	for i, k := range cfg.Ks {
		xs[i] = float64(k)
	}
	for _, n := range cfg.Sizes {
		tr, err := topology.BT(n)
		if err != nil {
			return nil, err
		}
		leaves := tr.Leaves()
		rng := rand.New(rand.NewSource(cfg.Seed))
		fAcc := stats.NewAccumulator(len(cfg.Ks))
		iAcc := stats.NewAccumulator(len(cfg.Ks))
		for rep := 0; rep < cfg.Reps; rep++ {
			loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
			fRow := make([]float64, len(cfg.Ks))
			iRow := make([]float64, len(cfg.Ks))
			for ki, k := range cfg.Ks {
				start := time.Now()
				core.Gather(tr, loads, nil, k)
				fRow[ki] = time.Since(start).Seconds()

				eng := core.NewIncremental(tr, loads, nil, k)
				start = time.Now()
				for u := 0; u < cfg.Updates; u++ {
					v := leaves[rng.Intn(len(leaves))]
					eng.UpdateLoad(v, 1)
					eng.Cost()
				}
				iRow[ki] = time.Since(start).Seconds() / float64(cfg.Updates)

				want := core.Solve(tr, eng.Loads(), nil, k).Cost
				if got := eng.Cost(); math.Abs(got-want) > 1e-9 {
					return nil, fmt.Errorf("ext-incremental: n=%d k=%d: engine φ=%v, from-scratch φ=%v", n, k, got, want)
				}
			}
			fAcc.Add(fRow)
			iAcc.Add(iRow)
		}
		label := fmt.Sprintf("size %d", n)
		fMean, iMean := fAcc.Mean(), iAcc.Mean()
		ratio := make([]float64, len(cfg.Ks))
		for i := range ratio {
			if iMean[i] > 0 {
				ratio[i] = fMean[i] / iMean[i]
			}
		}
		full.Series = append(full.Series, Series{Label: label, X: xs, Y: fMean, Err: fAcc.StdErr()})
		incr.Series = append(incr.Series, Series{Label: label, X: xs, Y: iMean, Err: iAcc.StdErr()})
		speedup.Series = append(speedup.Series, Series{Label: label, X: xs, Y: ratio})
	}
	return &Figure{
		ID:       "ext-incremental",
		Title:    "Incremental engine vs full SOAR-Gather (online point updates)",
		Subplots: []Subplot{full, incr, speedup},
	}, nil
}
