// TCP cluster deployment: every switch runs as a node with its own
// loopback TCP listener, every tree edge is a real TCP connection, and
// the SOAR gather tables, color assignments and Reduce results travel as
// length-prefixed binary frames (internal/wire). The distributed answer
// is cross-checked against the serial solver.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"soar/internal/cluster"
	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func main() {
	t, err := topology.BT(32) // 31 switches → 31 sockets + 31 connections
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	loads := load.Generate(t, load.PaperPowerLaw(), load.LeavesOnly, rng)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const k = 6
	start := time.Now()
	res, err := cluster.Run(ctx, t, loads, nil, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran SOAR + Reduce over %d loopback TCP links in %v\n",
		t.N(), time.Since(start).Round(time.Millisecond))

	serial := core.Solve(t, loads, nil, k)
	allRed := reduce.Utilization(t, loads, make([]bool, t.N()))
	fmt.Printf("  φ from the root's table      : %.1f\n", res.Cost)
	fmt.Printf("  φ measured during the Reduce : %.1f\n", res.ReducePhi)
	fmt.Printf("  φ from the serial solver     : %.1f\n", serial.Cost)
	fmt.Printf("  utilization vs all-red       : %.3f\n", res.Cost/allRed)
	fmt.Printf("  messages arriving at d       : %d\n", res.ReduceMessages)

	fmt.Println("\naggregation switches chosen by the distributed protocol:")
	for v, b := range res.Blue {
		if b {
			fmt.Printf("  switch %d (depth %d)\n", v, t.Depth(v))
		}
	}
	if res.Cost == serial.Cost && res.ReducePhi == serial.Cost {
		fmt.Println("\ndistributed == serial == measured ✓")
	} else {
		log.Fatalf("mismatch: distributed %v, measured %v, serial %v",
			res.Cost, res.ReducePhi, serial.Cost)
	}
}
