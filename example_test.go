package soar_test

import (
	"fmt"

	"soar"
)

// The package-level quickstart: solve the paper's running example.
func Example() {
	t := soar.CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	res := soar.Solve(t, loads, 2)
	fmt.Println(res.Cost)
	// Output: 20
}

// Solving for growing budgets reproduces the paper's Fig. 3 optima.
func ExampleSolve() {
	t := soar.CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	for k := 0; k <= 4; k++ {
		fmt.Printf("k=%d phi=%g\n", k, soar.Solve(t, loads, k).Cost)
	}
	// Output:
	// k=0 phi=51
	// k=1 phi=35
	// k=2 phi=20
	// k=3 phi=15
	// k=4 phi=11
}

// The distributed message-passing engine returns the same optimum.
func ExampleSolveDistributed() {
	t := soar.CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	fmt.Println(soar.SolveDistributed(t, loads, 2).Cost)
	// Output: 20
}

// Utilization evaluates any placement — here the paper's Fig. 2
// baselines against the optimum.
func ExampleUtilization() {
	t := soar.CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	for _, s := range soar.Baselines() {
		blue := s.Place(t, loads, nil, 2)
		fmt.Printf("%s %g\n", s.Name(), soar.Utilization(t, loads, blue))
	}
	fmt.Printf("soar %g\n", soar.Solve(t, loads, 2).Cost)
	// Output:
	// top 27
	// max 24
	// level 21
	// soar 20
}

// Restricting the availability set Λ models partially upgraded networks.
func ExampleSolveRestricted() {
	t := soar.CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	// Only the two mid switches were upgraded.
	avail := []bool{false, true, true, false, false, false, false}
	res := soar.SolveRestricted(t, loads, avail, 2)
	fmt.Println(res.Cost)
	// Output: 21
}

// Heterogeneous capacities: a blue switch consumes its capacity weight
// from the budget, so two weight-1 switches beat one weight-2 switch if
// the budget allows — and caps of 0 mark plain forwarders.
func ExampleSolveCaps() {
	t := soar.CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	// Root tier costs 1 unit, mid tier 2, leaves 4 (tiered fat-tree).
	caps := soar.CapsTiered(t, 1, 2, 4)
	uniform := soar.Solve(t, loads, 2)
	tiered := soar.SolveCaps(t, loads, caps, 2)
	fmt.Println(uniform.Cost, tiered.Cost)
	// Output: 20 35
}

// Trees are built from parent vectors; rates are per-edge.
func ExampleNewTree() {
	// A path d ← 0 ← 1 with a slow top link (rate 1/2).
	t, err := soar.NewTree([]int{soar.NoParent, 0}, []float64{0.5, 1})
	if err != nil {
		panic(err)
	}
	// 4 servers at the bottom, no aggregation: 4 messages cross each
	// edge; the top edge costs 2 per message.
	fmt.Println(soar.Utilization(t, []int{0, 4}, []bool{false, false}))
	// One blue switch at the bottom leaves 1 message per edge.
	fmt.Println(soar.Solve(t, []int{0, 4}, 1).Cost)
	// Output:
	// 12
	// 3
}

// MessageCounts exposes per-link traffic, the msg_e of the paper's Eq. 1.
func ExampleMessageCounts() {
	t := soar.CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	counts := soar.MessageCounts(t, loads, make([]bool, t.N()))
	fmt.Println(counts[t.Root()]) // everything converges on the (r,d) edge
	// Output: 17
}

// The concurrent scheduler serves many tenants over one shared tree:
// each Place runs SOAR against the residual lease capacities and
// charges the chosen switches; Release reclaims them.
func ExampleNewScheduler() {
	t := soar.CompleteBinaryTree(3)
	s := soar.NewScheduler(t, soar.SchedulerConfig{Capacity: 1})
	defer s.Close()
	lease, err := s.Place([]int{0, 0, 0, 2, 6, 5, 4}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(lease.Phi)       // the paper's Fig. 2d optimum
	fmt.Println(len(lease.Blue)) // two aggregation switches leased
	fmt.Println(s.Release(lease.ID) == nil)
	// Output:
	// 20
	// 2
	// true
}
