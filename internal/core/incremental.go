package core

import (
	"fmt"
	"slices"

	"soar/internal/topology"
)

// Incremental is a stateful SOAR engine for online settings: it keeps the
// SOAR-Gather tables of one tree alive across a stream of point updates
// to the load vector and the availability set, recomputing only the
// tables invalidated by each change.
//
// A switch's table depends solely on its children's tables and its own
// (load, availability, subtree-load) inputs, so an update at v dirties
// exactly the v→root path. Flushing a batch recomputes each dirty switch
// once, children before parents, via the same computeNode as the full
// Gather — the tables are therefore bitwise identical to a from-scratch
// Gather on the current inputs, and Solve returns the same placement.
//
// Costs: an update dirties ≤ h(T)+1 switches; recomputing switch v costs
// O(Depth(v)·Σ_m cap_prefix·cap[c_m]) with the effective-budget clamping
// of computeNode (at most O(Depth(v)·C(v)·k²), usually far less), so one
// flushed update is roughly O(h²·C·k) versus the full sweep's O(n·h·k) —
// a ~n/h saving (about two orders of magnitude on the paper's BT(2048)).
// The engine maintains |T_v ∩ Λ| under SetAvail, so the caps the tables
// are clamped to always match a from-scratch EffectiveCaps. Batched
// updates coalesce: paths sharing a prefix mark each shared switch once,
// so b leaf updates cost at most min(b·h, n) node recomputations in one
// flush. Recomputed tables reuse their existing backing arrays and one
// engine-lifetime merge scratch, so steady-state flushes are
// allocation-free.
//
// The zero value is not usable; construct with NewIncremental. The engine
// is not safe for concurrent use.
type Incremental struct {
	t        *topology.Tree
	load     []int   // owned copy; also aliased by tb.load
	avail    []bool  // owned copy, never nil
	subLoad  []int64 // subtree loads, maintained under UpdateLoad
	availCnt []int   // |T_v ∩ Λ|, maintained under SetAvail; cap[v] = min(k, availCnt[v])
	k        int
	tb       *Tables
	dirty    []bool
	queue    []int // dirty switches, unordered; invariant: upward-closed
	sc       *scratch
	cbuf     []*nodeTables // reusable child-table buffer for flushes
	cs       colorState    // reusable SOAR-Color scratch for SolveInto
}

// NewIncremental runs one full SOAR-Gather and returns an engine holding
// its tables. avail == nil means every switch may be blue; load and avail
// are copied, so later caller mutations do not affect the engine. A
// negative k is treated as 0.
func NewIncremental(t *topology.Tree, load []int, avail []bool, k int) *Incremental {
	validate(t, load, avail)
	if k < 0 {
		k = 0
	}
	n := t.N()
	inc := &Incremental{
		t:     t,
		load:  append([]int(nil), load...),
		avail: make([]bool, n),
		k:     k,
		dirty: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		inc.avail[v] = isAvail(avail, v)
	}
	inc.subLoad = t.SubtreeLoads(inc.load)
	// EffectiveCaps with budget n never clamps (counts cannot exceed n),
	// so it returns the raw |T_v ∩ Λ| the engine maintains.
	inc.availCnt = EffectiveCaps(t, inc.avail, n)
	inc.sc = newScratch(k)
	inc.tb = Gather(t, inc.load, inc.avail, k)
	return inc
}

// cap returns the effective budget min(k, |T_v ∩ Λ|) under the engine's
// current availability set.
func (inc *Incremental) cap(v int) int {
	return min(inc.k, inc.availCnt[v])
}

// K returns the budget the engine solves for.
func (inc *Incremental) K() int { return inc.k }

// Tree returns the tree the engine operates on.
func (inc *Incremental) Tree() *topology.Tree { return inc.t }

// Load returns the engine's current load at switch v.
func (inc *Incremental) Load(v int) int { return inc.load[v] }

// Loads returns a copy of the engine's current load vector.
func (inc *Incremental) Loads() []int { return append([]int(nil), inc.load...) }

// Avail reports whether switch v is currently available (v ∈ Λ).
func (inc *Incremental) Avail(v int) bool { return inc.avail[v] }

// Pending returns the number of switches whose tables are stale; it is
// zero right after a flush (Flush, Solve, Cost or Tables).
func (inc *Incremental) Pending() int { return len(inc.queue) }

// UpdateLoad adds delta to the load of switch v and marks the v→root
// path dirty. It panics if the load would become negative. The
// recomputation is deferred until the next flush, so consecutive updates
// batch.
func (inc *Incremental) UpdateLoad(v, delta int) {
	if delta == 0 {
		return
	}
	if inc.load[v]+delta < 0 {
		panic(fmt.Sprintf("core: incremental update drives switch %d load to %d", v, inc.load[v]+delta))
	}
	inc.load[v] += delta
	for u := v; ; u = inc.t.Parent(u) {
		inc.subLoad[u] += int64(delta)
		inc.markDirty(u)
		if u == inc.t.Root() {
			return
		}
	}
}

// SetLoad sets the load of switch v to value (a convenience wrapper
// around UpdateLoad).
func (inc *Incremental) SetLoad(v, value int) {
	if value < 0 {
		panic(fmt.Sprintf("core: incremental SetLoad(%d, %d): negative load", v, value))
	}
	inc.UpdateLoad(v, value-inc.load[v])
}

// SetAvail inserts v into (ok == true) or removes v from (ok == false)
// the availability set Λ, marking the v→root path dirty. A no-op change
// dirties nothing.
func (inc *Incremental) SetAvail(v int, ok bool) {
	if inc.avail[v] == ok {
		return
	}
	inc.avail[v] = ok
	delta := 1
	if !ok {
		delta = -1
	}
	for u := v; ; u = inc.t.Parent(u) {
		inc.availCnt[u] += delta
		inc.markDirty(u)
		if u == inc.t.Root() {
			return
		}
	}
}

// SetLoads patches the engine's whole load vector to equal loads,
// dirtying only the root paths of switches whose load actually changed.
// It is the bulk reset used by pooled engines (internal/sched): repointing
// a warm engine at a different tenant's load vector costs one O(n)
// comparison scan plus recomputation of the changed paths only, instead
// of a from-scratch Gather.
func (inc *Incremental) SetLoads(loads []int) {
	if len(loads) != inc.t.N() {
		panic(fmt.Sprintf("core: incremental SetLoads has %d entries for %d switches", len(loads), inc.t.N()))
	}
	for v, l := range loads {
		if l != inc.load[v] {
			inc.SetLoad(v, l)
		}
	}
}

// SetAvails patches the engine's availability set to equal avail
// (nil means every switch available), dirtying only the root paths of
// switches whose membership in Λ actually changed — the bulk companion
// of SetLoads for engine pooling.
func (inc *Incremental) SetAvails(avail []bool) {
	if avail != nil && len(avail) != inc.t.N() {
		panic(fmt.Sprintf("core: incremental SetAvails has %d entries for %d switches", len(avail), inc.t.N()))
	}
	for v := 0; v < inc.t.N(); v++ {
		inc.SetAvail(v, isAvail(avail, v))
	}
}

// markDirty enqueues u once. Because every mutation marks a full
// suffix-path up to the root, the dirty set is upward-closed; callers
// that walk upward may stop at the first already-dirty switch.
func (inc *Incremental) markDirty(u int) {
	if !inc.dirty[u] {
		inc.dirty[u] = true
		inc.queue = append(inc.queue, u)
	}
}

// Flush recomputes every dirty table, children before parents. Shared
// path prefixes from a batch of updates are recomputed once.
func (inc *Incremental) Flush() {
	if len(inc.queue) == 0 {
		return
	}
	// Deeper switches first; a parent on the queue is always strictly
	// shallower than its dirty children, so this is a valid bottom-up
	// order over the (upward-closed) dirty set.
	slices.SortFunc(inc.queue, func(a, b int) int {
		return inc.t.Depth(b) - inc.t.Depth(a)
	})
	for _, v := range inc.queue {
		// Reuse the node's existing backing arrays (resized if SetAvail
		// moved its cap), plus the engine-lifetime merge scratch and
		// child buffer: a steady-state flush allocates nothing.
		nt := &inc.tb.nodes[v]
		ensureNodeStorage(nt, inc.t.Depth(v), inc.cap(v), inc.t.NumChildren(v), true)
		inc.cbuf = appendChildTables(inc.cbuf[:0], inc.tb, v)
		computeNode(inc.t, v, inc.load[v], inc.subLoad[v] > 0,
			inc.avail[v], nt, inc.cbuf, inc.sc)
		inc.dirty[v] = false
	}
	inc.queue = inc.queue[:0]
}

// Cost flushes pending updates and returns the optimal utilization
// φ-BIC(T, L, Λ, k) for the current inputs.
func (inc *Incremental) Cost() float64 {
	inc.Flush()
	return inc.tb.Optimum()
}

// Solve flushes pending updates and runs SOAR-Color over the maintained
// tables, returning the same placement a from-scratch Solve would.
func (inc *Incremental) Solve() Result {
	inc.Flush()
	blue, cost := ColorPhase(inc.tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveInto is Solve writing the optimal blue set into a caller-owned
// buffer (which must have length N) and returning φ. It reuses the
// engine's color scratch, so a steady-state admission — SetLoads /
// SetAvails followed by SolveInto — performs no allocations at all.
func (inc *Incremental) SolveInto(blue []bool) float64 {
	inc.Flush()
	return inc.cs.colorInto(inc.tb, blue)
}

// Tables flushes pending updates and exposes the maintained DP state.
// The returned tables stay owned by the engine: they are valid until the
// next mutating call.
func (inc *Incremental) Tables() *Tables {
	inc.Flush()
	return inc.tb
}
