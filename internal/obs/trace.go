package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span side of the observability layer: a fixed-size
// ring of span events answering "where did the last N operations'
// time go" on a live daemon. Metrics aggregate; spans itemize. The
// scheduler records enqueue→batch→solve→commit stages per admission,
// the cluster runtime records dial/send/gather/validate per frame, the
// memo records class builds, and the checkpoint path records
// encode/validate/install — all through one Trace, dumped over
// /v1/trace?n= as JSON.
//
// The design constraint is the same as the metrics registry's: Record
// sits on //soar:hotpath functions, so it must not allocate, lock, or
// branch on anything but atomics. Operation names are interned up
// front (Op returns a dense integer id); a span is six atomic words in
// a pre-allocated ring slot claimed by a single fetch-add. Torn spans
// — a reader overlapping a writer on the same slot — are detected by
// sequence number and dropped from dumps, the standard seqlock trade:
// readers never block writers.

// OpID names a registered span operation. The zero OpID is valid only
// if it was returned by Op.
type OpID uint32

// span is one ring slot. All fields are atomics so Dump can read
// concurrently with Record without a data race; seq is written last
// (release) and checked by readers to discard torn slots.
type span struct {
	seq   atomic.Uint64 // 1-based publication counter; 0 = never written
	op    atomic.Uint32
	start atomic.Int64 // unix nanos
	dur   atomic.Int64 // nanoseconds
	v1    atomic.Int64 // operation-defined (e.g. batch size, bytes)
	v2    atomic.Int64 // operation-defined (e.g. Φ, hit count)
}

// SpanEvent is one dumped span, newest first.
type SpanEvent struct {
	Seq   uint64        `json:"seq"`
	Op    string        `json:"op"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	V1    int64         `json:"v1"`
	V2    int64         `json:"v2"`
}

// Trace is a lock-free ring of span events. The zero value is not
// usable; call NewTrace.
type Trace struct {
	mu   sync.Mutex // guards ops registration only, never Record
	ops  []string
	ring []span
	mask uint64
	next atomic.Uint64
}

// NewTrace returns a trace ring holding the most recent size spans
// (rounded up to a power of two, minimum 64).
func NewTrace(size int) *Trace {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Trace{ring: make([]span, n), mask: uint64(n - 1)}
}

// Op interns an operation name and returns its id. Call once per
// operation at wiring time, not per record. Safe for concurrent use.
func (t *Trace) Op(name string) OpID {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, existing := range t.ops {
		if existing == name {
			return OpID(i)
		}
	}
	t.ops = append(t.ops, name)
	return OpID(len(t.ops) - 1)
}

// Record publishes one span: op with the given start time, duration,
// and two operation-defined values. Allocation-free and lock-free; the
// slot is claimed by a single atomic fetch-add, so concurrent
// recorders never contend on more than the ring cursor.
//
//soar:hotpath
func (t *Trace) Record(op OpID, start time.Time, dur time.Duration, v1, v2 int64) {
	seq := t.next.Add(1)
	s := &t.ring[seq&t.mask]
	// Invalidate the slot while rewriting it so a concurrent Dump drops
	// it instead of reading a torn mix of old and new fields.
	s.seq.Store(0)
	s.op.Store(uint32(op))
	s.start.Store(start.UnixNano())
	s.dur.Store(int64(dur))
	s.v1.Store(v1)
	s.v2.Store(v2)
	s.seq.Store(seq)
}

// Dump returns up to n of the most recent spans, newest first. Safe
// concurrently with Record; spans being rewritten while read are
// skipped rather than returned torn.
func (t *Trace) Dump(n int) []SpanEvent {
	if n <= 0 || n > len(t.ring) {
		n = len(t.ring)
	}
	t.mu.Lock()
	ops := append([]string(nil), t.ops...)
	t.mu.Unlock()

	newest := t.next.Load()
	out := make([]SpanEvent, 0, n)
	for seq := newest; seq > 0 && len(out) < n && newest-seq < uint64(len(t.ring)); seq-- {
		s := &t.ring[seq&t.mask]
		if s.seq.Load() != seq {
			continue // torn or already overwritten
		}
		ev := SpanEvent{
			Seq:   seq,
			Start: time.Unix(0, s.start.Load()),
			Dur:   time.Duration(s.dur.Load()),
			V1:    s.v1.Load(),
			V2:    s.v2.Load(),
		}
		op := s.op.Load()
		// Re-check publication after reading the fields: if the slot was
		// reclaimed mid-read, the fields may be torn — drop it.
		if s.seq.Load() != seq {
			continue
		}
		if int(op) < len(ops) {
			ev.Op = ops[op]
		}
		out = append(out, ev)
	}
	return out
}
