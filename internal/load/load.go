// Package load generates the per-switch workloads used throughout the
// SOAR evaluation (Sec. 5 of the paper).
//
// The paper uses two distributions for the number of servers attached to
// each leaf switch: a uniform integer distribution with mean 5 and small
// variance (range [4, 6]), and a heavy-tailed power-law distribution with
// mean 5 and variance ≈ 97 (range [1, 63]). Both are reproduced here,
// calibrated numerically rather than hard-coded, so other means and
// supports can be requested too.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"soar/internal/topology"
)

// Distribution samples a non-negative integer load.
type Distribution interface {
	Sample(rng *rand.Rand) int
	String() string
}

// Uniform samples integers uniformly at random from [Min, Max].
type Uniform struct {
	Min, Max int
}

// PaperUniform is the paper's uniform load distribution: u.a.r. on
// {4, 5, 6}, mean 5.
func PaperUniform() Uniform { return Uniform{Min: 4, Max: 6} }

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) int {
	if u.Max < u.Min {
		panic(fmt.Sprintf("load: Uniform[%d,%d] has Max < Min", u.Min, u.Max))
	}
	return u.Min + rng.Intn(u.Max-u.Min+1)
}

func (u Uniform) String() string { return fmt.Sprintf("uniform[%d,%d]", u.Min, u.Max) }

// Constant always samples the same value.
type Constant struct{ V int }

// Sample implements Distribution.
func (c Constant) Sample(*rand.Rand) int { return c.V }

func (c Constant) String() string { return fmt.Sprintf("const(%d)", c.V) }

// PowerLaw samples from a bounded discrete power law:
// P(x) ∝ x^(−Alpha) for x in [Min, Max]. Construct with NewPowerLaw or
// CalibratePowerLaw.
type PowerLaw struct {
	Alpha    float64
	Min, Max int
	cdf      []float64
}

// NewPowerLaw precomputes the CDF for the given exponent and support.
func NewPowerLaw(alpha float64, min, max int) *PowerLaw {
	if min < 1 || max < min {
		panic(fmt.Sprintf("load: PowerLaw support [%d,%d] invalid", min, max))
	}
	p := &PowerLaw{Alpha: alpha, Min: min, Max: max}
	p.cdf = make([]float64, max-min+1)
	sum := 0.0
	for x := min; x <= max; x++ {
		sum += math.Pow(float64(x), -alpha)
		p.cdf[x-min] = sum
	}
	for i := range p.cdf {
		p.cdf[i] /= sum
	}
	return p
}

// PaperPowerLaw is the paper's power-law load distribution: support
// [1, 63], exponent calibrated so the mean is 5 (the paper reports
// mean 5, variance 97.1).
func PaperPowerLaw() *PowerLaw { return CalibratePowerLaw(5, 1, 63) }

// CalibratePowerLaw finds, by bisection, the exponent α for which the
// bounded power law on [min, max] has the requested mean, and returns the
// calibrated distribution. The mean is strictly decreasing in α, so the
// bisection always converges; it panics if the target mean is outside the
// achievable range (min, (min+max)/2-ish).
func CalibratePowerLaw(mean float64, min, max int) *PowerLaw {
	lo, hi := -10.0, 20.0
	if m := NewPowerLaw(lo, min, max).Mean(); m < mean {
		panic(fmt.Sprintf("load: target mean %v above achievable %v", mean, m))
	}
	if m := NewPowerLaw(hi, min, max).Mean(); m > mean {
		panic(fmt.Sprintf("load: target mean %v below achievable %v", mean, m))
	}
	for i := 0; i < 200 && hi-lo > 1e-12; i++ {
		mid := (lo + hi) / 2
		if NewPowerLaw(mid, min, max).Mean() > mean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return NewPowerLaw((lo+hi)/2, min, max)
}

// Sample implements Distribution.
func (p *PowerLaw) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(p.cdf, u)
	if i >= len(p.cdf) {
		i = len(p.cdf) - 1
	}
	return p.Min + i
}

// Mean returns the exact mean of the distribution.
func (p *PowerLaw) Mean() float64 {
	m := 0.0
	prev := 0.0
	for x := p.Min; x <= p.Max; x++ {
		pr := p.cdf[x-p.Min] - prev
		prev = p.cdf[x-p.Min]
		m += pr * float64(x)
	}
	return m
}

// Variance returns the exact variance of the distribution.
func (p *PowerLaw) Variance() float64 {
	mean := p.Mean()
	v := 0.0
	prev := 0.0
	for x := p.Min; x <= p.Max; x++ {
		pr := p.cdf[x-p.Min] - prev
		prev = p.cdf[x-p.Min]
		d := float64(x) - mean
		v += pr * d * d
	}
	return v
}

func (p *PowerLaw) String() string {
	return fmt.Sprintf("powerlaw(α=%.3f)[%d,%d]", p.Alpha, p.Min, p.Max)
}

// Placement selects which switches receive load.
type Placement int

const (
	// LeavesOnly attaches servers only to leaf switches, the paper's
	// default for complete binary trees ("these leaves serve as
	// top-of-rack switches").
	LeavesOnly Placement = iota
	// AllNodes attaches servers to every switch, used for scale-free
	// trees in the paper's Appendix B.
	AllNodes
)

// Generate draws a load vector for tree t: every selected switch gets an
// independent sample from d, every other switch gets 0.
func Generate(t *topology.Tree, d Distribution, where Placement, rng *rand.Rand) []int {
	l := make([]int, t.N())
	for v := 0; v < t.N(); v++ {
		if where == AllNodes || t.IsLeaf(v) {
			l[v] = d.Sample(rng)
		}
	}
	return l
}

// GenerateSparse draws a sparse load vector: m leaves chosen uniformly
// at random (without replacement) each get an independent sample from d;
// every other switch gets 0. This models a tenant whose servers occupy
// only a few racks of a shared tree — the regime the incremental engine
// and the placement scheduler (internal/sched) are built for, since two
// consecutive tenants then differ in O(m·h) switches rather than O(n).
// m is clamped to the number of leaves.
func GenerateSparse(t *topology.Tree, d Distribution, m int, rng *rand.Rand) []int {
	l := make([]int, t.N())
	leaves := t.Leaves()
	if m >= len(leaves) {
		for _, v := range leaves {
			l[v] = d.Sample(rng)
		}
		return l
	}
	// Floyd's sampling: m distinct leaves in O(m) without shuffling the
	// shared leaf slice.
	chosen := make(map[int]struct{}, m)
	for i := len(leaves) - m; i < len(leaves); i++ {
		j := rng.Intn(i + 1)
		if _, dup := chosen[j]; dup {
			j = i
		}
		chosen[j] = struct{}{}
		l[leaves[j]] = d.Sample(rng)
	}
	return l
}

// Total returns the sum of a load vector.
func Total(l []int) int64 {
	var s int64
	for _, x := range l {
		s += int64(x)
	}
	return s
}
