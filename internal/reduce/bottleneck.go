package reduce

import "soar/internal/topology"

// BottleneckUtilization returns max_e msg_e·ρ(e): the transmission time
// of the busiest link during the Reduce. The paper's Sec. 8 proposes
// minimizing bottleneck load as a companion objective to φ and
// conjectures that φ-optimal placements do well on it; the extension
// experiment (experiments.ExtObjectives) measures exactly that.
func BottleneckUtilization(t *topology.Tree, load []int, blue []bool) float64 {
	counts := MessageCounts(t, load, blue)
	var worst float64
	for v, m := range counts {
		if c := float64(m) * t.Rho(v); c > worst {
			worst = c
		}
	}
	return worst
}

// PerLinkUtilization returns msg_e·ρ(e) for every edge (indexed by the
// lower endpoint), the distribution whose sum is φ and whose maximum is
// the bottleneck.
func PerLinkUtilization(t *topology.Tree, load []int, blue []bool) []float64 {
	counts := MessageCounts(t, load, blue)
	out := make([]float64, t.N())
	for v, m := range counts {
		out[v] = float64(m) * t.Rho(v)
	}
	return out
}
