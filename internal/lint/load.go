package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked lint unit: a package's compiled files plus
// its in-package _test.go files, or — as a separate unit with the
// ".test" import-path suffix — a package's external test package
// (package foo_test).
type Unit struct {
	// ImportPath is the unit's import path within the module; external
	// test packages carry a ".test" suffix.
	ImportPath string
	// Dir is the unit's directory on disk.
	Dir string
	// Files are the parsed files of the unit, in file-name order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
}

// Module is a fully loaded and type-checked module.
type Module struct {
	// Fset positions every file of every unit.
	Fset *token.FileSet
	// Path is the module path from go.mod.
	Path string
	// Dir is the module root directory (absolute).
	Dir string
	// Units lists all lint units, sorted by import path.
	Units []*Unit
	// Notes holds the module-wide annotation facts.
	Notes *Notes

	// effects caches the lockdiscipline analyzer's per-function effect
	// summaries, computed once per module.
	effects map[string]*funcEffects
}

// LoadModule parses and type-checks every package under dir's module
// using only the standard library: module-internal imports resolve
// through the loader itself, standard-library imports through the
// source importer. go.mod must exist at dir and declare no
// requirements (the loader is deliberately unable to resolve external
// modules — the repo's zero-dependency invariant keeps that honest).
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{Fset: fset, Path: modPath, Dir: abs}
	l := &loader{
		fset:    fset,
		mod:     mod,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		ip := modPath
		if rel, err := filepath.Rel(abs, d); err == nil && rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.importModulePackage(ip); err != nil {
			return nil, fmt.Errorf("load %s: %w", ip, err)
		}
		if err := l.loadExternalTests(ip, d); err != nil {
			return nil, fmt.Errorf("load %s external tests: %w", ip, err)
		}
	}
	if len(l.errs) > 0 {
		return nil, fmt.Errorf("type errors:\n%s", strings.Join(l.errs, "\n"))
	}
	sort.Slice(mod.Units, func(i, j int) bool { return mod.Units[i].ImportPath < mod.Units[j].ImportPath })
	mod.Notes = collectNotes(mod)
	return mod, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if after, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(after), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// packageDirs returns every directory under root holding .go files,
// skipping testdata, hidden and underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// loader resolves imports: module packages recursively through itself,
// everything else through the standard library's source importer.
type loader struct {
	fset    *token.FileSet
	mod     *Module
	std     types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
	errs    []string
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		return l.importModulePackage(path)
	}
	return l.std.Import(path)
}

// importModulePackage loads, parses and type-checks one module
// package as a lint unit. The unit's view includes in-package _test.go
// files — the Go toolchain forbids import cycles through those, so the
// combined view stays acyclic and can double as the import view for
// dependent packages.
func (l *loader) importModulePackage(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.mod.Dir
	if rel, ok := strings.CutPrefix(path, l.mod.Path+"/"); ok {
		dir = filepath.Join(l.mod.Dir, filepath.FromSlash(rel))
	}
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue // external test package: loaded separately
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	unit, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = unit.Pkg
	return unit.Pkg, nil
}

// loadExternalTests loads dir's external test package (package X_test),
// if any, as its own unit with import path ip+".test".
func (l *loader) loadExternalTests(ip, dir string) error {
	names, err := goFileNames(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	for _, name := range names {
		if !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	_, err = l.check(ip+".test", dir, files)
	return err
}

// check type-checks files as one unit and registers it on the module.
func (l *loader) check(path, dir string, files []*ast.File) (*Unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer: l,
		Error: func(err error) {
			l.errs = append(l.errs, err.Error())
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && len(l.errs) == 0 {
		return nil, err
	}
	unit := &Unit{ImportPath: path, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.mod.Units = append(l.mod.Units, unit)
	return unit, nil
}

// goFileNames lists dir's .go files in name order.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
