package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/stats"
	"soar/internal/topology"
)

// ExtMemoConfig parameterizes the memoization extension experiment: a
// sweep of topology symmetry (BT, the paper's evaluation family;
// scale-free, its Appendix B family; a path, the adversarially
// asymmetric extreme) against load sparsity (the fraction of leaves a
// tenant actually occupies), measuring how much of the SOAR-Gather DP
// the hash-consed solve cache (core.Memo) eliminates. The companion
// congestion paper (arXiv:2201.04344) leans on exactly the fat-tree
// regularity this cache exploits.
type ExtMemoConfig struct {
	// Switches is the approximate network size per family (BT rounds up
	// to a power of two; the path is capped at 512 switches to keep the
	// O(n·h·k) plain solves it is compared against tractable).
	Switches int
	// K is the aggregation budget.
	K int
	// Fracs are the load sparsities swept: the fraction of leaves with
	// non-zero load (1 = the paper's fully loaded instances).
	Fracs []float64
	// Solves is the number of timed solves per measurement (the memoized
	// engine is timed warm: one untimed solve populates the cache).
	Solves int
	// Reps averages over independent load vectors.
	Reps int
	Seed int64
}

// DefaultExtMemo sweeps the Fig. 9 flagship size.
func DefaultExtMemo() ExtMemoConfig {
	return ExtMemoConfig{
		Switches: 2048,
		K:        32,
		Fracs:    []float64{1, 0.5, 0.25, 0.1, 0.02},
		Solves:   8,
		Reps:     3,
		Seed:     11,
	}
}

// QuickExtMemo is a reduced instance for tests.
func QuickExtMemo() ExtMemoConfig {
	return ExtMemoConfig{Switches: 64, K: 4, Fracs: []float64{1, 0.25}, Solves: 2, Reps: 1, Seed: 11}
}

// ExtMemo times plain SOAR-Gather against the warm memoized engine
// across (family × sparsity) and reports the speedup plus the number of
// distinct equivalence classes per switch (the structural compression
// the cache achieves; 1.0 means no sharing at all). Series labels carry
// each family's load-free topology symmetry (topology.SubtreeClasses).
// As a built-in guard, every cell cross-checks the memoized optimum and
// placement bitwise against the plain engine.
func ExtMemo(cfg ExtMemoConfig) (*Figure, error) {
	type family struct {
		name  string
		build func(rng *rand.Rand) (*topology.Tree, error)
	}
	pow2 := 2
	for pow2 < cfg.Switches {
		pow2 *= 2
	}
	families := []family{
		{"BT", func(*rand.Rand) (*topology.Tree, error) { return topology.BT(pow2) }},
		{"scale-free", func(rng *rand.Rand) (*topology.Tree, error) {
			return topology.ScaleFree(cfg.Switches, rng), nil
		}},
		{"path", func(*rand.Rand) (*topology.Tree, error) {
			return topology.Path(min(cfg.Switches, 512)), nil
		}},
	}

	speedup := Subplot{Name: "warm memoized speedup (plain Gather / GatherMemo)", XLabel: "loaded leaf fraction", YLabel: "speedup"}
	classes := Subplot{Name: "equivalence classes per switch (lower = more sharing)", XLabel: "loaded leaf fraction", YLabel: "classes / n"}
	xs := cfg.Fracs

	for _, fam := range families {
		rng := rand.New(rand.NewSource(cfg.Seed))
		tr, err := fam.build(rng)
		if err != nil {
			return nil, err
		}
		leaves := tr.Leaves()
		sAcc := stats.NewAccumulator(len(cfg.Fracs))
		cAcc := stats.NewAccumulator(len(cfg.Fracs))
		for rep := 0; rep < cfg.Reps; rep++ {
			sRow := make([]float64, len(cfg.Fracs))
			cRow := make([]float64, len(cfg.Fracs))
			for fi, frac := range cfg.Fracs {
				m := max(1, int(frac*float64(len(leaves))+0.5))
				loads := load.GenerateSparse(tr, load.PaperPowerLaw(), m, rng)

				start := time.Now()
				for s := 0; s < cfg.Solves; s++ {
					core.Gather(tr, loads, nil, cfg.K)
				}
				plain := time.Since(start).Seconds() / float64(cfg.Solves)

				memo := core.NewMemo(tr)
				warm := core.GatherMemo(memo, loads, nil, cfg.K) // populate
				start = time.Now()
				for s := 0; s < cfg.Solves; s++ {
					core.GatherMemo(memo, loads, nil, cfg.K)
				}
				cached := time.Since(start).Seconds() / float64(cfg.Solves)

				// Guard: memoization must be invisible in the results —
				// cost AND placement (equal φ with a different blue set
				// would still be an aliasing bug).
				ref := core.Gather(tr, loads, nil, cfg.K)
				if warm.Optimum() != ref.Optimum() {
					return nil, fmt.Errorf("ext-memo: %s frac=%v: memoized φ=%v, plain φ=%v",
						fam.name, frac, warm.Optimum(), ref.Optimum())
				}
				warmBlue, _ := core.ColorPhase(warm)
				refBlue, _ := core.ColorPhase(ref)
				for v := range refBlue {
					if warmBlue[v] != refBlue[v] {
						return nil, fmt.Errorf("ext-memo: %s frac=%v: memoized placement differs at switch %d",
							fam.name, frac, v)
					}
				}

				if cached > 0 {
					sRow[fi] = plain / cached
				}
				cRow[fi] = float64(memo.Stats().Classes) / float64(tr.N())
			}
			sAcc.Add(sRow)
			cAcc.Add(cRow)
		}
		label := fmt.Sprintf("%s (n=%d, %.3f topo classes/switch)",
			fam.name, tr.N(), float64(tr.SubtreeClasses())/float64(tr.N()))
		speedup.Series = append(speedup.Series, Series{Label: label, X: xs, Y: sAcc.Mean(), Err: sAcc.StdErr()})
		classes.Series = append(classes.Series, Series{Label: label, X: xs, Y: cAcc.Mean(), Err: cAcc.StdErr()})
	}
	return &Figure{
		ID:       "ext-memo",
		Title:    fmt.Sprintf("Extension: structural memoization across symmetry × sparsity (k=%d)", cfg.K),
		Subplots: []Subplot{speedup, classes},
	}, nil
}
