package core

import (
	"math/rand"
	"testing"
)

// FuzzMemoMatchesGather drives the memoized engines against plain
// Gather on fuzzer-chosen instances: random trees with random rates,
// sparse and dense loads, restricted availability, capacity vectors and
// update streams. The contract is bitwise equality — tables, color
// flags and placements — cold and warm, which is exactly what makes
// class-table aliasing sound. Run the corpus with `go test`, or explore
// with `go test -fuzz FuzzMemoMatchesGather ./internal/core`.
func FuzzMemoMatchesGather(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-3))
	f.Add(int64(1 << 33))
	f.Fuzz(func(t *testing.T, seed int64) {
		tr, loads, avail, k := randomInstance(seed, 25, 6)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		if rng.Intn(2) == 0 {
			// Sparsify: the zero-load fast path is the dominant regime of
			// the scheduler's tenants; make sure the fuzzer visits it.
			for v := range loads {
				if rng.Intn(3) != 0 {
					loads[v] = 0
				}
			}
		}
		checkCell := func(name string, got, want *Tables) {
			for v := 0; v < tr.N(); v++ {
				for l := 0; l <= tr.Depth(v); l++ {
					for i := 0; i <= k; i++ {
						if got.X(v, l, i) != want.X(v, l, i) || got.Blue(v, l, i) != want.Blue(v, l, i) {
							t.Fatalf("seed %d: %s table differs at X_%d(%d,%d)", seed, name, v, l, i)
						}
					}
				}
			}
		}
		checkBlue := func(name string, got, want Result) {
			if got.Cost != want.Cost {
				t.Fatalf("seed %d: %s φ=%v, want %v", seed, name, got.Cost, want.Cost)
			}
			for v := range want.Blue {
				if got.Blue[v] != want.Blue[v] {
					t.Fatalf("seed %d: %s placement differs at switch %d", seed, name, v)
				}
			}
		}

		want := Gather(tr, loads, avail, k)
		wantRes := Solve(tr, loads, avail, k)
		m := NewMemo(tr)
		for rep := 0; rep < 2; rep++ { // cold, then warm
			checkCell("memo", GatherMemo(m, loads, avail, k), want)
			checkBlue("memo", SolveMemo(m, loads, avail, k), wantRes)
			checkCell("parallel memo", GatherParallelMemo(m, loads, avail, k, 3), want)
			checkBlue("compact memo", SolveCompactMemo(m, loads, avail, k), wantRes)
		}

		// Capacity vectors share the same memo.
		caps := make([]int, tr.N())
		for v := range caps {
			caps[v] = rng.Intn(4)
		}
		checkCell("memo caps", GatherMemoCaps(m, loads, caps, k), GatherCaps(tr, loads, caps, k))
		checkBlue("memo caps", SolveMemoCaps(m, loads, caps, k), SolveCaps(tr, loads, caps, k))

		// Stateful engine over a short update stream, same memo.
		inc := NewIncrementalMemo(m, loads, avail, k)
		cur := append([]int(nil), loads...)
		curAvail := append([]bool(nil), avail...)
		for step := 0; step < 4; step++ {
			v := rng.Intn(tr.N())
			if rng.Intn(2) == 0 {
				cur[v] = rng.Intn(5)
				inc.SetLoad(v, cur[v])
			} else {
				curAvail[v] = !curAvail[v]
				inc.SetAvail(v, curAvail[v])
			}
			checkBlue("incremental memo", inc.Solve(), Solve(tr, cur, curAvail, k))
			checkCell("incremental memo", inc.Tables(), Gather(tr, cur, curAvail, k))
		}
	})
}
