package core

import (
	"math/rand"
	"testing"

	"soar/internal/topology"
)

// randomBatch builds one tree plus a batch of sparse load vectors
// sharing an availability set and budget. Some instances are fully
// zero (the all-red edge case), some load a single switch, the rest
// load a few random switches.
func randomBatch(seed int64, maxN, maxB, maxK int) (*topology.Tree, [][]int, []bool, int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	parent := make([]int, n)
	omega := make([]float64, n)
	parent[0] = topology.NoParent
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	for v := 0; v < n; v++ {
		omega[v] = []float64{0.5, 1, 2, 4}[rng.Intn(4)]
	}
	t := topology.MustNew(parent, omega)
	avail := make([]bool, n)
	for v := range avail {
		avail[v] = rng.Intn(5) != 0
	}
	B := 1 + rng.Intn(maxB)
	loads := make([][]int, B)
	for b := range loads {
		loads[b] = make([]int, n)
		switch rng.Intn(4) {
		case 0: // all-zero instance
		case 1: // one loaded switch
			loads[b][rng.Intn(n)] = 1 + rng.Intn(8)
		default: // sparse
			for j := 0; j < 1+rng.Intn(4); j++ {
				loads[b][rng.Intn(n)] = rng.Intn(6)
			}
		}
	}
	return t, loads, avail, rng.Intn(maxK + 1)
}

// TestSolveBatchAgreesWithSolve is the batch solver's bitwise-identity
// gate: for every instance of every batch, cost and placement must be
// exactly what the plain per-instance engine produces — not close, equal.
func TestSolveBatchAgreesWithSolve(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		tr, loads, avail, k := randomBatch(seed, 40, 8, 6)
		m := NewMemo(tr)
		got := SolveBatch(m, loads, avail, k)
		if len(got) != len(loads) {
			t.Fatalf("seed %d: %d results for %d instances", seed, len(got), len(loads))
		}
		for b := range loads {
			want := Solve(tr, loads[b], avail, k)
			if got[b].Cost != want.Cost {
				t.Fatalf("seed %d instance %d: batch cost %v, solve cost %v", seed, b, got[b].Cost, want.Cost)
			}
			for v := range want.Blue {
				if got[b].Blue[v] != want.Blue[v] {
					t.Fatalf("seed %d instance %d: blue[%d] = %v, want %v", seed, b, v, got[b].Blue[v], want.Blue[v])
				}
			}
		}
	}
}

// TestBatchSolverReuse re-solves varying batches on one BatchSolver —
// including shrinking and growing batch sizes and a warm second pass
// over the same batch — and checks agreement every time. This is the
// path the scheduler drives.
func TestBatchSolverReuse(t *testing.T) {
	tr, loads, avail, k := randomBatch(7, 60, 10, 8)
	m := NewMemo(tr)
	bs := NewBatchSolver(m)
	if bs.Memo() != m {
		t.Fatal("Memo() does not return the wrapped memo")
	}
	n := tr.N()
	check := func(batch [][]int) {
		t.Helper()
		blue := make([][]bool, len(batch))
		costs := make([]float64, len(batch))
		for b := range blue {
			blue[b] = make([]bool, n)
		}
		bs.Solve(batch, avail, k, blue, costs)
		for b := range batch {
			want := Solve(tr, batch[b], avail, k)
			if costs[b] != want.Cost {
				t.Fatalf("instance %d: cost %v, want %v", b, costs[b], want.Cost)
			}
			for v := range want.Blue {
				if blue[b][v] != want.Blue[v] {
					t.Fatalf("instance %d: blue[%d] = %v, want %v", b, v, blue[b][v], want.Blue[v])
				}
			}
		}
	}
	check(loads)
	check(loads) // warm: every class hits
	check(loads[:1])
	check(append(loads, loads...)) // larger batch than ever seen
	bs.Solve(nil, avail, k, nil, nil)
}

// TestSolveBatchSharesMemo checks both directions of cache sharing: a
// batch warms the memo for single solves, and single solves warm it for
// batches, with results identical throughout.
func TestSolveBatchSharesMemo(t *testing.T) {
	tr, loads, avail, k := randomBatch(11, 50, 6, 5)
	m := NewMemo(tr)
	for b := range loads {
		SolveMemo(m, loads[b], avail, k) // warm via single solves
	}
	statsBefore := m.Stats()
	got := SolveBatch(m, loads, avail, k)
	for b := range loads {
		want := SolveMemo(m, loads[b], avail, k)
		if got[b].Cost != want.Cost {
			t.Fatalf("instance %d: batch cost %v, memo cost %v", b, got[b].Cost, want.Cost)
		}
	}
	if s := m.Stats(); s.Classes != statsBefore.Classes {
		t.Fatalf("batch over warmed memo interned %d new classes", s.Classes-statsBefore.Classes)
	}
}

// TestBatchSolverSteadyStateAllocs pins the batch solver's steady-state
// contract: with warm memo and caller-owned output buffers, a batch
// solve allocates nothing.
func TestBatchSolverSteadyStateAllocs(t *testing.T) {
	tr := topology.MustBT(256)
	rng := rand.New(rand.NewSource(3))
	leaves := tr.Leaves()
	const B = 16
	loads := make([][]int, B)
	for b := range loads {
		loads[b] = make([]int, tr.N())
		for j := 0; j < 4; j++ {
			loads[b][leaves[rng.Intn(len(leaves))]] = 1 + rng.Intn(8)
		}
	}
	const k = 8
	m := NewMemo(tr)
	bs := NewBatchSolver(m)
	blue := make([][]bool, B)
	costs := make([]float64, B)
	for b := range blue {
		blue[b] = make([]bool, tr.N())
	}
	bs.Solve(loads, nil, k, blue, costs) // warm classes and scratch
	allocs := testing.AllocsPerRun(10, func() {
		bs.Solve(loads, nil, k, blue, costs)
	})
	if allocs != 0 {
		t.Fatalf("warm batch solve allocates %v objects/op, want 0", allocs)
	}
}

// TestSolveBatchValidates pins the input validation contract.
func TestSolveBatchValidates(t *testing.T) {
	tr := topology.MustBT(8)
	m := NewMemo(tr)
	bs := NewBatchSolver(m)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	good := make([]int, tr.N())
	mustPanic("short load", func() {
		bs.Solve([][]int{{1}}, nil, 2, [][]bool{make([]bool, tr.N())}, []float64{0})
	})
	mustPanic("negative load", func() {
		bad := make([]int, tr.N())
		bad[0] = -1
		bs.Solve([][]int{bad}, nil, 2, [][]bool{make([]bool, tr.N())}, []float64{0})
	})
	mustPanic("short blue", func() {
		bs.Solve([][]int{good}, nil, 2, [][]bool{make([]bool, 1)}, []float64{0})
	})
	mustPanic("mismatched outputs", func() {
		bs.Solve([][]int{good}, nil, 2, nil, []float64{0})
	})
}
