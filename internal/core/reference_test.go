package core

import (
	"math"

	"soar/internal/topology"
)

// referenceCost is an independent implementation of the φ-BIC optimum:
// a direct recursive-memoized evaluation of the paper's potential
// recursion (Lemma 6.1 / Eqs. 12-13), written with maps and explicit
// recursion instead of flat tables, argmin breadcrumbs or traversal
// orders. It returns only the cost. Brute force certifies tiny
// instances; this reference extends the cross-check to mid-size trees
// (n ≈ 60, k ≈ 10) where 2^n enumeration is impossible.
func referenceCost(t *topology.Tree, load []int, avail []bool, k int) float64 {
	weight := func(v int) int {
		if avail == nil || avail[v] {
			return 1
		}
		return 0
	}
	return referenceCostWeighted(t, load, weight, k)
}

// referenceCostCaps is the independent reference for the heterogeneous
// capacity model: a blue at v consumes caps[v] budget units, caps[v] = 0
// means v may never be blue.
func referenceCostCaps(t *topology.Tree, load []int, caps []int, k int) float64 {
	weight := func(v int) int {
		if caps == nil {
			return 1
		}
		return caps[v]
	}
	return referenceCostWeighted(t, load, weight, k)
}

func referenceCostWeighted(t *topology.Tree, load []int, weight func(v int) int, k int) float64 {
	if k < 0 {
		k = 0
	}
	subLoad := t.SubtreeLoads(load)
	bsend := func(v int) float64 {
		if subLoad[v] > 0 {
			return 1
		}
		return 0
	}
	ok := func(v int) bool { return weight(v) >= 1 }

	type xKey struct{ v, l, i int }
	type yKey struct {
		v, m, l, i int
		blue       bool
	}
	xMemo := make(map[xKey]float64)
	yMemo := make(map[yKey]float64)

	var x func(v, l, i int) float64
	var y func(v, m, l, i int, blue bool) float64

	y = func(v, m, l, i int, blue bool) float64 {
		if blue && !ok(v) {
			return math.Inf(1)
		}
		key := yKey{v, m, l, i, blue}
		if c, hit := yMemo[key]; hit {
			return c
		}
		children := t.Children(v)
		var cost float64
		if m == 1 {
			if blue {
				if w := weight(v); i < w {
					cost = math.Inf(1)
				} else {
					cost = x(children[0], 1, i-w) + t.RhoUp(v, l)*bsend(v)
				}
			} else {
				cost = x(children[0], l+1, i) + t.RhoUp(v, l)*float64(load[v])
			}
		} else {
			cost = math.Inf(1)
			childL := l + 1
			if blue {
				childL = 1
			}
			for j := 0; j <= i; j++ {
				if c := y(v, m-1, l, i-j, blue) + x(children[m-1], childL, j); c < cost {
					cost = c
				}
			}
		}
		yMemo[key] = cost
		return cost
	}

	x = func(v, l, i int) float64 {
		key := xKey{v, l, i}
		if c, hit := xMemo[key]; hit {
			return c
		}
		var cost float64
		if t.IsLeaf(v) {
			cost = t.RhoUp(v, l) * float64(load[v])
			if ok(v) && i >= weight(v) {
				if blue := t.RhoUp(v, l) * bsend(v); blue < cost {
					cost = blue
				}
			}
		} else {
			c := t.NumChildren(v)
			cost = y(v, c, l, i, false)
			if b := y(v, c, l, i, true); b < cost {
				cost = b
			}
		}
		xMemo[key] = cost
		return cost
	}

	return x(t.Root(), 1, k)
}
