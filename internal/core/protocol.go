package core

import (
	"fmt"

	"soar/internal/topology"
)

// decide performs one switch's SOAR-Color step: given the budget i and
// barrier distance l received from the parent, it returns the switch's
// color and, for each child in order, the (budget, l) pair to forward.
// Shared by ColorPhase, SolveDistributed and the TCP cluster engine.
//
// Budgets above nt.cap read the cap column of the tables and breadcrumbs
// (identical by the clamping invariant), but the leftover bookkeeping
// still runs on the full budget, so the forwarded numbers match the
// unbounded DP exactly.
//
// childBudget is built by appending to dst, so a caller looping over a
// whole tree can pass a reused buffer (ColorPhase does); pass nil for
// fresh storage when the slice outlives the call.
//
//soar:hotpath
func decide(t *topology.Tree, nt *nodeTables, v, budget, l int, dst []int) (isBlue bool, childBudget []int, childL int) {
	isBlue = nt.blueAt(l, budget)
	children := t.Children(v)
	if len(children) == 0 {
		return isBlue, dst, 0 // dst untouched, so a looping caller keeps its capacity
	}
	colorIdx := 0
	childL = l + 1
	if isBlue {
		colorIdx, childL = 1, 1
	}
	depth := t.Depth(v)
	childBudget = dst
	for range children {
		childBudget = append(childBudget, 0)
	}
	remaining := budget
	for m := len(children) - 1; m >= 1; m-- {
		j := nt.splitAt(m-1, colorIdx, depth, l, remaining)
		childBudget[m] = j
		remaining -= j
	}
	if isBlue {
		remaining -= nt.capw // a blue v consumes its capacity weight (1 uniform)
	}
	childBudget[0] = remaining
	return isBlue, childBudget, childL
}

// NodeState is the per-switch protocol engine behind the message-passing
// deployments of SOAR (the goroutine engine and the TCP cluster). A
// switch constructs its state from the X tables its children sent, ships
// XTable() to its parent, and later answers the parent's (budget, ℓ)
// assignment with Decide.
type NodeState struct {
	t  *topology.Tree
	v  int
	k  int
	nt nodeTables
}

// NewNodeState runs the SOAR-Gather step of switch v in the uniform
// model: avail is v ∈ Λ, and a blue consumes one budget unit. It is
// NewNodeStateCaps with capacity 1 or 0.
func NewNodeState(t *topology.Tree, v int, loadV int, hasLoad, avail bool, k int, childX [][]float64) (*NodeState, error) {
	capw := 0
	if avail {
		capw = 1
	}
	return NewNodeStateCaps(t, v, loadV, hasLoad, capw, k, childX)
}

// NewNodeStateCaps runs the SOAR-Gather step of switch v under the
// heterogeneous capacity model: a blue at v consumes capw budget units
// (0 means v may not be blue). childX must hold one flattened X table per
// child, in child order, each of length (Depth(child)+1)·(cap(child)+1)
// as produced by XTable on the child — the child's effective cap is
// recovered from the table length. The switch's own cap is then
// min(k, capw + Σ child caps), exactly EffectiveCapsVec applied one
// level up.
func NewNodeStateCaps(t *topology.Tree, v int, loadV int, hasLoad bool, capw, k int, childX [][]float64) (*NodeState, error) {
	if k < 0 {
		k = 0
	}
	if capw < 0 || capw > MaxCapacity {
		return nil, fmt.Errorf("core: switch %d has capacity %d outside [0, %d]", v, capw, MaxCapacity)
	}
	children := t.Children(v)
	if len(childX) != len(children) {
		return nil, fmt.Errorf("core: switch %d has %d children but got %d tables", v, len(children), len(childX))
	}
	capv := int64(capw) // int64: exact even near MaxInt budgets on 32-bit
	tables := make([]*nodeTables, len(children))
	for i, c := range children {
		rows := t.Depth(c) + 1
		if len(childX[i]) == 0 || len(childX[i])%rows != 0 {
			return nil, fmt.Errorf("core: child %d table has %d entries, want a positive multiple of %d rows", c, len(childX[i]), rows)
		}
		ccap := len(childX[i])/rows - 1
		if ccap > k {
			return nil, fmt.Errorf("core: child %d table has %d budget columns, want at most k+1 = %d", c, ccap+1, k+1)
		}
		tables[i] = &nodeTables{cap: ccap, x: childX[i]}
		capv += int64(ccap)
	}
	if capv > int64(k) {
		capv = int64(k)
	}
	ns := &NodeState{
		t:  t,
		v:  v,
		k:  k,
		nt: newNodeStorage(t.Depth(v), int(capv), len(children), true),
	}
	computeNode(t, v, loadV, hasLoad, capw, &ns.nt, tables, newScratch(int(capv)))
	return ns, nil
}

// Cap returns the switch's effective budget min(k, Σ_{u ∈ T_v} c(u))
// (min(k, |T_v ∩ Λ|) in the uniform model), the number of budget columns
// (minus one) in XTable.
func (ns *NodeState) Cap() int { return ns.nt.cap }

// XTable returns the flattened X table to send to the parent, of length
// (Depth(v)+1)·(Cap()+1), row-major in ℓ.
func (ns *NodeState) XTable() []float64 {
	out := make([]float64, len(ns.nt.x))
	copy(out, ns.nt.x)
	return out
}

// Optimum returns X_v(1, k); meaningful at the root, where it is the
// optimal φ the destination reads off (paper Eq. 6).
func (ns *NodeState) Optimum() float64 {
	return ns.nt.at(1, ns.k)
}

// Decide answers the parent's SOAR-Color assignment: it returns whether v
// is blue and the (budget, ℓ) to forward to each child in child order.
func (ns *NodeState) Decide(budget, l int) (isBlue bool, childBudget []int, childL int, err error) {
	if budget < 0 || budget > ns.k {
		return false, nil, 0, fmt.Errorf("core: switch %d got budget %d outside [0,%d]", ns.v, budget, ns.k)
	}
	if l < 0 || l > ns.t.Depth(ns.v) {
		return false, nil, 0, fmt.Errorf("core: switch %d got ℓ=%d outside [0,%d]", ns.v, l, ns.t.Depth(ns.v))
	}
	isBlue, childBudget, childL = decide(ns.t, &ns.nt, ns.v, budget, l, nil)
	return isBlue, childBudget, childL, nil
}
