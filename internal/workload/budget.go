package workload

import "soar/internal/load"

// BudgetPolicy decides how many aggregation switches one arriving
// workload may use. The paper's evaluation fixes a uniform k for every
// workload; its Sec. 8 raises the open question of giving each workload
// a distinct budget. These policies make that extension concrete.
type BudgetPolicy func(loads []int) int

// FixedBudget grants every workload the same budget, the paper's
// baseline behaviour.
func FixedBudget(k int) BudgetPolicy {
	return func([]int) int { return k }
}

// LoadProportionalBudget grants a workload one aggregation switch per
// serversPerSwitch servers it brings, clamped to [min, max]. Heavy
// (power-law) workloads — which benefit most from aggregation — receive
// more switches; light ones consume less of the shared capacity.
func LoadProportionalBudget(serversPerSwitch, min, max int) BudgetPolicy {
	if serversPerSwitch < 1 {
		panic("workload: serversPerSwitch must be ≥ 1")
	}
	return func(loads []int) int {
		k := int(load.Total(loads)) / serversPerSwitch
		if k < min {
			k = min
		}
		if k > max {
			k = max
		}
		return k
	}
}

// HandleWithBudget is Handle with a per-workload budget override,
// enabling BudgetPolicy-driven runs.
func (a *Allocator) HandleWithBudget(loads []int, k int) (blue []bool, phi float64) {
	saved := a.k
	a.k = k
	defer func() { a.k = saved }()
	return a.Handle(loads)
}

// RunPolicy drives an allocator over a workload sequence with a
// per-workload budget policy; the allocator's own k is ignored.
func RunPolicy(a *Allocator, workloads [][]int, policy BudgetPolicy) RunResult {
	res := RunResult{
		PerWorkload:     make([]float64, len(workloads)),
		AllRed:          make([]float64, len(workloads)),
		CumulativeRatio: make([]float64, len(workloads)),
	}
	allRed := make([]bool, a.t.N())
	var sumPhi, sumRed float64
	for i, l := range workloads {
		_, phi := a.HandleWithBudget(l, policy(l))
		res.PerWorkload[i] = phi
		res.AllRed[i] = phiAllRed(a, l, allRed)
		sumPhi += phi
		sumRed += res.AllRed[i]
		res.CumulativeRatio[i] = sumPhi / sumRed
	}
	return res
}
