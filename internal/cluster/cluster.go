// Package cluster deploys SOAR over a real transport: every switch is a
// node with its own TCP listener on the loopback interface, every tree
// edge is a TCP connection, and the SOAR-Gather tables, SOAR-Color
// assignments and Reduce results travel as binary frames (internal/wire).
//
// The paper describes SOAR-Gather and SOAR-Color as distributed
// asynchronous algorithms synchronized purely by message arrival
// (Sec. 4.2); this package is that description made concrete. A run
// performs, in order, on every edge's single connection:
//
//	child → parent   Hello      (identify the edge)
//	child → parent   Gather     (the child's X table)
//	parent → child   Color      (budget and barrier distance ℓ)
//	child → parent   ReduceDone (messages crossed + subtree φ)
//
// The destination d is played by the coordinator, which accepts the
// root's connection, reads the optimal cost from the root's table, sends
// the budget k down, and receives the final Reduce result.
//
// The runtime no longer assumes a perfect network. Every frame exchange
// carries its own I/O deadline (Options.FrameTimeout) independent of any
// context deadline, so a dead peer fails the frame instead of hanging
// the run; transient dial failures are retried with exponential backoff
// and jitter (Options.Retry); and RunOrFallback (retry.go) degrades
// gracefully — when whole-run retries are exhausted it answers from a
// local core.SolveMemo solve, flagged Degraded, instead of erroring.
// Faults can be injected deterministically through Options.Dial and
// Options.WrapListener (see internal/chaos).
package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"soar/internal/core"
	"soar/internal/topology"
	"soar/internal/wire"
)

// DefaultFrameTimeout is the per-frame I/O deadline applied when
// Options.FrameTimeout is unset. It bounds how long any single accept,
// frame read or frame write may block — even when the caller's context
// has no deadline — so one dead peer can never hang a run forever.
const DefaultFrameTimeout = 10 * time.Second

// RetryPolicy bounds retries of transient transport failures with
// exponential backoff and jitter. The zero value selects the defaults
// (4 attempts, 5ms base delay doubling up to 250ms).
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retry; default 4).
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles every
	// retry (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 250ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.Attempts <= 0 {
		return 4
	}
	return p.Attempts
}

// backoff returns the jittered delay before retry number attempt (≥ 1):
// uniform in [d/2, d] where d = min(MaxDelay, BaseDelay·2^(attempt−1)).
// Full determinism is not a goal here (jitter exists to de-synchronize
// retry storms), so the shared math/rand source is fine.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base, maxd := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if maxd <= 0 {
		maxd = 250 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d <= 0 || d > maxd {
		d = maxd
	}
	return d/2 + time.Duration(rngInt63n(int64(d/2)+1))
}

// sleepBackoff waits out the backoff for retry number attempt, honoring
// ctx cancellation.
func sleepBackoff(ctx context.Context, p RetryPolicy, attempt int) error {
	t := time.NewTimer(p.backoff(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Options tunes a run's transport behavior. The zero value (or a nil
// *Options) selects plain TCP with the default frame timeout and retry
// policy.
type Options struct {
	// Dial dials addr on behalf of the given node (switches 0..n−1; the
	// destination never dials). nil uses a plain net.Dialer. Fault
	// injectors substitute their own (chaos.Injector.Dial).
	Dial func(ctx context.Context, node int, addr string) (net.Conn, error)
	// WrapListener wraps node's freshly created listener (switches
	// 0..n−1, the destination as node n). nil leaves listeners bare.
	WrapListener func(node int, ln net.Listener) net.Listener
	// FrameTimeout is the per-frame I/O deadline, applied to every
	// accept, frame read and frame write independently of ctx (default
	// DefaultFrameTimeout; < 0 disables, leaving only ctx to bound I/O).
	FrameTimeout time.Duration
	// Retry bounds transient-failure retries: per-node dial attempts in
	// Run, whole-run attempts in RunOrFallback.
	Retry RetryPolicy
	// Metrics, when non-nil, receives the run's observability events:
	// run/frame/dial counters, run-duration observations, and
	// per-frame spans in the Metrics' trace ring (see NewMetrics).
	// nil records nothing.
	Metrics *Metrics
}

func (o *Options) withDefaults() *Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Dial == nil {
		out.Dial = func(ctx context.Context, _ int, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if out.WrapListener == nil {
		out.WrapListener = func(_ int, ln net.Listener) net.Listener { return ln }
	}
	switch {
	case out.FrameTimeout == 0:
		out.FrameTimeout = DefaultFrameTimeout
	case out.FrameTimeout < 0:
		out.FrameTimeout = 0
	}
	return &out
}

// Result is the outcome of a cluster run.
type Result struct {
	// Blue is the placement decided by the distributed SOAR-Color.
	Blue []bool
	// Cost is the optimal φ the destination read from the root's table.
	Cost float64
	// ReduceMessages is the number of messages the destination received
	// over the (r, d) edge during the distributed Reduce.
	ReduceMessages int64
	// ReducePhi is the utilization Σ msg_e·ρ(e) accumulated hop by hop
	// during the distributed Reduce; it must equal Cost.
	ReducePhi float64
	// Degraded reports that the distributed run failed even after
	// retries and the result was computed by a local solve instead
	// (RunOrFallback). A degraded result is still exact — the local
	// solver is the same DP — but no Reduce traffic actually crossed
	// the network.
	Degraded bool
	// Attempts is the number of whole-run attempts RunOrFallback made
	// (1 for a first-try success; 0 when Run was called directly).
	Attempts int
	// Cause is the last transport error when Degraded, nil otherwise.
	Cause error
}

// Run executes SOAR and a Reduce over a loopback TCP mesh and returns the
// placement, the DP cost, and the measured Reduce cost. It honors ctx
// cancellation and deadlines; on any node error the whole run is torn
// down and the first error returned.
func Run(ctx context.Context, t *topology.Tree, load []int, avail []bool, k int) (*Result, error) {
	if avail == nil {
		return RunCaps(ctx, t, load, nil, k) // nil caps already means weight 1 everywhere
	}
	weights := make([]int, t.N())
	for v := range weights {
		if avail[v] {
			weights[v] = 1
		}
	}
	return RunCaps(ctx, t, load, weights, k)
}

// RunCaps is Run under the heterogeneous capacity model (see
// core.SolveCaps): a blue at v consumes caps[v] of the budget and
// caps[v] = 0 means v may never aggregate. caps == nil means every
// switch has capacity 1. The wire protocol is unchanged — capacities
// only reshape the effective budgets, and with them the width of the
// Gather frames each parent accepts.
func RunCaps(ctx context.Context, t *topology.Tree, load []int, caps []int, k int) (*Result, error) {
	return RunWithOptions(ctx, t, load, caps, k, nil)
}

// validateInputs rejects malformed problems before any socket is opened.
// These errors are permanent: neither retry nor fallback can fix them.
func validateInputs(t *topology.Tree, load []int, caps []int) error {
	if len(load) != t.N() {
		return fmt.Errorf("cluster: load has %d entries for %d switches", len(load), t.N())
	}
	if caps != nil && len(caps) != t.N() {
		return fmt.Errorf("cluster: caps has %d entries for %d switches", len(caps), t.N())
	}
	for v, c := range caps {
		if c < 0 {
			return fmt.Errorf("cluster: switch %d has negative capacity %d", v, c)
		}
	}
	return nil
}

// RunWithOptions is RunCaps with explicit transport options: custom
// dialers and listener wrappers (fault injection), per-frame I/O
// deadlines, the dial retry policy, and optional metrics.
func RunWithOptions(ctx context.Context, t *topology.Tree, load []int, caps []int, k int, opts *Options) (*Result, error) {
	if err := validateInputs(t, load, caps); err != nil {
		return nil, err // malformed problems are not "runs attempted"
	}
	opts = opts.withDefaults()
	t0 := time.Now()
	res, err := runWithOptions(ctx, t, load, caps, k, opts)
	opts.Metrics.noteRun(t0, t.N(), err)
	return res, err
}

// runWithOptions is the instrumentation-free body of RunWithOptions;
// opts has already been defaulted and the inputs validated.
func runWithOptions(ctx context.Context, t *topology.Tree, load []int, caps []int, k int, opts *Options) (*Result, error) {
	if k < 0 {
		k = 0
	}
	n := t.N()
	subLoad := t.SubtreeLoads(load)
	// Effective budgets bound every table's width: a child's Gather
	// frame must carry exactly cap[c]+1 = min(k, Σ_{u ∈ T_c} c(u))+1
	// budget columns, which both shrinks the frames and lets each parent
	// reject mis-shaped tables.
	ecaps := core.EffectiveCapsVec(t, caps, k)

	// One listener per switch plus one for the destination, all created
	// up front so that children always find their parent listening.
	listeners := make([]net.Listener, n+1)
	var lc net.ListenConfig
	for i := range listeners {
		ln, err := lc.Listen(ctx, "tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		listeners[i] = opts.WrapListener(i, ln)
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	if testListenerHook != nil {
		testListenerHook(listeners)
	}
	addrOf := func(v int) string { return listeners[v].Addr().String() }
	destListener := listeners[n]

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{Blue: make([]bool, n)}
	errCh := make(chan error, n+1)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			capw := 1
			if caps != nil {
				capw = caps[v]
			}
			if err := runNode(runCtx, t, v, load[v], subLoad[v] > 0, capw, k, ecaps,
				listeners[v], addrOf, res.Blue, opts); err != nil {
				errCh <- fmt.Errorf("switch %d: %w", v, err)
				cancel()
			}
		}(v)
	}

	// Play the destination.
	destErr := make(chan error, 1)
	go func() {
		err := runDestination(runCtx, destListener, k, ecaps[t.Root()], res, opts)
		if err != nil {
			cancel() // unblock the switches before Run waits on them
		}
		destErr <- err
	}()

	// Tear down listeners if the context dies so Accept calls unblock.
	go func() {
		<-runCtx.Done()
		for _, l := range listeners {
			l.Close()
		}
	}()

	wg.Wait()
	if err := <-destErr; err != nil {
		select {
		case nodeErr := <-errCh:
			return nil, nodeErr // a node failure is the root cause
		default:
			return nil, err
		}
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return res, nil
}

// testListenerHook, when non-nil, receives the freshly created listeners
// (switch 0..n-1, destination last) before any node starts. Failure-
// injection tests use it to attack the protocol from outside.
var testListenerHook func([]net.Listener)

// edge wraps one tree-edge connection with buffered framing and a
// per-frame I/O deadline: every send and recv is bounded by timeout on
// its own, independent of any context deadline, so a peer that stops
// mid-protocol fails the frame instead of blocking forever.
type edge struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
	met     *Metrics // may be nil: then frames record nothing
}

func newEdge(conn net.Conn, timeout time.Duration, met *Metrics) *edge {
	return &edge{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: timeout, met: met}
}

func (e *edge) send(m wire.Message) error {
	t0 := time.Now()
	if e.timeout > 0 {
		e.conn.SetWriteDeadline(t0.Add(e.timeout))
	}
	err := wire.Write(e.w, m)
	if err == nil {
		err = e.w.Flush()
	}
	e.met.noteFrame(false, t0, err)
	return err
}

// recv reads one typed frame under the edge's per-frame deadline.
func recv[M wire.Message](e *edge) (M, error) {
	t0 := time.Now()
	if e.timeout > 0 {
		e.conn.SetReadDeadline(t0.Add(e.timeout))
	}
	m, err := wire.ReadTyped[M](e.r)
	e.met.noteFrame(true, t0, err)
	return m, err
}

func (e *edge) close() {
	if e != nil {
		e.conn.Close()
	}
}

// accept bounds one Accept call with the per-frame deadline when the
// listener supports deadlines (*net.TCPListener and the chaos wrapper
// both do).
func accept(ln net.Listener, timeout time.Duration) (net.Conn, error) {
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		if timeout > 0 {
			d.SetDeadline(time.Now().Add(timeout))
		} else {
			d.SetDeadline(time.Time{})
		}
	}
	return ln.Accept()
}

// dialWithRetry dials the node's parent with bounded retries: transient
// dial failures (the network analogue of a lost SYN) back off
// exponentially with jitter until the policy is exhausted or ctx dies.
func dialWithRetry(ctx context.Context, opts *Options, node int, addr string) (net.Conn, error) {
	t0 := time.Now()
	var lastErr error
	attempts := opts.Retry.attempts()
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if err := sleepBackoff(ctx, opts.Retry, attempt-1); err != nil {
				opts.Metrics.noteDial(t0, attempt-1, err)
				return nil, err
			}
		}
		conn, err := opts.Dial(ctx, node, addr)
		if err == nil {
			opts.Metrics.noteDial(t0, attempt, nil)
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			opts.Metrics.noteDial(t0, attempt, lastErr)
			return nil, lastErr
		}
	}
	opts.Metrics.noteDial(t0, attempts, lastErr)
	return nil, fmt.Errorf("dial parent: %d attempts exhausted: %w", attempts, lastErr)
}

// runNode is the full lifecycle of one switch. capw is the switch's own
// capacity weight; ecaps the tree-wide effective budgets bounding every
// frame's width.
func runNode(ctx context.Context, t *topology.Tree, v, loadV int, hasLoad bool,
	capw, k int, ecaps []int, ln net.Listener, addrOf func(int) string, blueOut []bool, opts *Options) error {

	children := t.Children(v)

	// Accept one connection per child; Hello identifies which child.
	childEdge := make(map[int]*edge, len(children))
	defer func() {
		for _, e := range childEdge {
			e.close()
		}
	}()
	for range children {
		conn, err := accept(ln, opts.FrameTimeout)
		if err != nil {
			return fmt.Errorf("accept: %w", err)
		}
		bindToCtx(ctx, conn)
		e := newEdge(conn, opts.FrameTimeout, opts.Metrics)
		hello, err := recv[*wire.Hello](e)
		if err != nil {
			conn.Close()
			return fmt.Errorf("hello: %w", err)
		}
		c := int(hello.Child)
		if c < 0 || c >= t.N() || t.Parent(c) != v {
			conn.Close()
			return fmt.Errorf("hello from %d, which is not a child", c)
		}
		if _, dup := childEdge[c]; dup {
			conn.Close()
			return fmt.Errorf("duplicate hello from child %d", c)
		}
		childEdge[c] = e
	}

	// SOAR-Gather: collect the children's X tables, in child order.
	childX := make([][]float64, len(children))
	for i, c := range children {
		g, err := recv[*wire.Gather](childEdge[c])
		if err != nil {
			return fmt.Errorf("gather from %d: %w", c, err)
		}
		if int(g.Child) != c || int(g.Rows) != t.Depth(c)+1 || int(g.Cols) != ecaps[c]+1 {
			return fmt.Errorf("gather from %d has shape %dx%d for child %d (want %dx%d)",
				g.Child, g.Rows, g.Cols, c, t.Depth(c)+1, ecaps[c]+1)
		}
		childX[i] = g.X
	}
	ns, err := core.NewNodeStateCaps(t, v, loadV, hasLoad, capw, k, childX)
	if err != nil {
		return err
	}

	// Dial the parent (or the destination, for the root) and ship our table.
	parentAddr := addrOf(t.N()) // destination
	if p := t.Parent(v); p != topology.NoParent {
		parentAddr = addrOf(p)
	}
	conn, err := dialWithRetry(ctx, opts, v, parentAddr)
	if err != nil {
		return err
	}
	bindToCtx(ctx, conn)
	up := newEdge(conn, opts.FrameTimeout, opts.Metrics)
	defer up.close()
	if err := up.send(&wire.Hello{Child: uint32(v)}); err != nil {
		return err
	}
	x := ns.XTable()
	if err := up.send(&wire.Gather{
		Child: uint32(v),
		Rows:  uint32(t.Depth(v) + 1),
		Cols:  uint32(ns.Cap() + 1),
		X:     x,
	}); err != nil {
		return err
	}

	// SOAR-Color: receive our assignment, decide, forward the splits.
	cm, err := recv[*wire.Color](up)
	if err != nil {
		return fmt.Errorf("color: %w", err)
	}
	isBlue, childBudget, childL, err := ns.Decide(int(cm.Budget), int(cm.L))
	if err != nil {
		return err
	}
	blueOut[v] = isBlue // distinct index per goroutine
	for i, c := range children {
		if err := childEdge[c].send(&wire.Color{Budget: uint32(childBudget[i]), L: uint32(childL)}); err != nil {
			return fmt.Errorf("color to %d: %w", c, err)
		}
	}

	// Reduce: wait for the children's results, apply Algorithm 1 locally,
	// report upward.
	var inMsgs int64
	var phi float64
	for _, c := range children {
		rd, err := recv[*wire.ReduceDone](childEdge[c])
		if err != nil {
			return fmt.Errorf("reduce from %d: %w", c, err)
		}
		inMsgs += int64(rd.Messages)
		phi += rd.Phi()
	}
	out := inMsgs + int64(loadV)
	if isBlue && out > 1 {
		out = 1
	}
	phi += float64(out) * t.Rho(v)
	done := &wire.ReduceDone{Child: uint32(v), Messages: uint64(out)}
	done.SetPhi(phi)
	return up.send(done)
}

// runDestination plays d: accept the root, read the optimum, start the
// color phase with budget k, and collect the Reduce result. capRoot is
// the root's effective budget min(k, Σ c(u)) — min(k, |Λ|) in the
// uniform model — the width (minus one) of the table frame the root must
// ship.
func runDestination(ctx context.Context, ln net.Listener, k, capRoot int, res *Result, opts *Options) error {
	// The root dials d only after the whole tree below it has gathered,
	// so this accept legitimately spans every lower phase (plus any
	// dial retries): give it the whole retry envelope, not one frame.
	acceptTimeout := opts.FrameTimeout
	if acceptTimeout > 0 {
		acceptTimeout *= time.Duration(opts.Retry.attempts())
	}
	conn, err := accept(ln, acceptTimeout)
	if err != nil {
		return fmt.Errorf("destination accept: %w", err)
	}
	bindToCtx(ctx, conn)
	e := newEdge(conn, opts.FrameTimeout, opts.Metrics)
	defer e.close()
	if _, err := recv[*wire.Hello](e); err != nil {
		return fmt.Errorf("destination hello: %w", err)
	}
	g, err := recv[*wire.Gather](e)
	if err != nil {
		return fmt.Errorf("destination gather: %w", err)
	}
	if g.Rows < 2 || g.Cols != uint32(capRoot+1) {
		return fmt.Errorf("root table has shape %dx%d, want 2x%d", g.Rows, g.Cols, capRoot+1)
	}
	res.Cost = g.X[1*(capRoot+1)+capRoot] // X_r(1, k) = X_r(1, cap), paper Eq. 6
	if err := e.send(&wire.Color{Budget: uint32(k), L: 1}); err != nil {
		return err
	}
	rd, err := recv[*wire.ReduceDone](e)
	if err != nil {
		return fmt.Errorf("destination reduce: %w", err)
	}
	res.ReduceMessages = int64(rd.Messages)
	res.ReducePhi = rd.Phi()
	return nil
}

// bindToCtx binds a connection's lifetime to the context: cancellation
// closes the socket so blocked reads and writes unwind promptly. I/O
// timeouts are NOT taken from the context anymore — every frame carries
// its own deadline (edge.timeout) — so a context without a deadline no
// longer means unbounded blocking on a dead peer. The registration is
// released when the run's context is canceled (Run always cancels on
// exit), so nothing leaks.
func bindToCtx(ctx context.Context, conn net.Conn) {
	context.AfterFunc(ctx, func() { conn.Close() })
}
