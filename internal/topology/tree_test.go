package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		parent []int
		omega  []float64
	}{
		{"empty", nil, nil},
		{"rate mismatch", []int{NoParent}, []float64{1, 1}},
		{"two roots", []int{NoParent, NoParent}, []float64{1, 1}},
		{"no root", []int{1, 0}, []float64{1, 1}},
		{"self parent", []int{NoParent, 1}, []float64{1, 1}},
		{"out of range", []int{NoParent, 7}, []float64{1, 1}},
		{"zero rate", []int{NoParent}, []float64{0}},
		{"negative rate", []int{NoParent, 0}, []float64{1, -2}},
		{"cycle", []int{NoParent, 2, 1}, []float64{1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.parent, tc.omega); err == nil {
				t.Fatalf("New(%v, %v) succeeded, want error", tc.parent, tc.omega)
			}
		})
	}
}

func TestSingleNode(t *testing.T) {
	tr := MustNew([]int{NoParent}, []float64{2})
	if tr.N() != 1 || tr.Root() != 0 {
		t.Fatalf("N=%d root=%d", tr.N(), tr.Root())
	}
	if tr.Depth(0) != 1 || tr.Height() != 0 {
		t.Fatalf("depth=%d height=%d, want 1, 0", tr.Depth(0), tr.Height())
	}
	if got := tr.Rho(0); got != 0.5 {
		t.Fatalf("Rho(0)=%v, want 0.5", got)
	}
	if got := tr.RhoUp(0, 1); got != 0.5 {
		t.Fatalf("RhoUp(0,1)=%v, want 0.5", got)
	}
}

func TestCompleteBinaryShape(t *testing.T) {
	tr := CompleteBinary(4) // 15 switches
	if tr.N() != 15 {
		t.Fatalf("N=%d, want 15", tr.N())
	}
	if tr.Height() != 3 {
		t.Fatalf("Height=%d, want 3", tr.Height())
	}
	if got := len(tr.Leaves()); got != 8 {
		t.Fatalf("leaves=%d, want 8", got)
	}
	for v := 1; v < tr.N(); v++ {
		if tr.Parent(v) != (v-1)/2 {
			t.Fatalf("Parent(%d)=%d, want %d", v, tr.Parent(v), (v-1)/2)
		}
	}
	for lvl := 0; lvl <= 3; lvl++ {
		if got := len(tr.NodesAtLevel(lvl)); got != 1<<lvl {
			t.Fatalf("level %d has %d nodes, want %d", lvl, got, 1<<lvl)
		}
	}
}

func TestBT(t *testing.T) {
	tr, err := BT(256)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 255 {
		t.Fatalf("BT(256) has %d switches, want 255", tr.N())
	}
	if got := len(tr.Leaves()); got != 128 {
		t.Fatalf("BT(256) has %d leaves, want 128", got)
	}
	for _, bad := range []int{0, 1, 3, 100} {
		if _, err := BT(bad); err == nil {
			t.Fatalf("BT(%d) succeeded, want error", bad)
		}
	}
}

func TestCompleteKAry(t *testing.T) {
	tr := CompleteKAry(3, 3) // 1 + 3 + 9 = 13
	if tr.N() != 13 {
		t.Fatalf("N=%d, want 13", tr.N())
	}
	for v := 1; v < tr.N(); v++ {
		if got, want := tr.Parent(v), (v-1)/3; got != want {
			t.Fatalf("Parent(%d)=%d, want %d", v, got, want)
		}
	}
	if got := len(tr.Leaves()); got != 9 {
		t.Fatalf("leaves=%d, want 9", got)
	}
}

func TestPathAndStar(t *testing.T) {
	p := Path(5)
	if p.Height() != 4 || p.Depth(4) != 5 {
		t.Fatalf("path: height=%d depth(4)=%d", p.Height(), p.Depth(4))
	}
	s := Star(5)
	if s.Height() != 1 || len(s.Children(0)) != 4 {
		t.Fatalf("star: height=%d children=%d", s.Height(), len(s.Children(0)))
	}
}

func TestScaleFreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := ScaleFree(200, rng)
	if tr.N() != 200 {
		t.Fatalf("N=%d", tr.N())
	}
	// Preferential attachment should produce at least one hub far above
	// the average degree of ~2.
	maxDeg := 0
	for v := 0; v < tr.N(); v++ {
		if d := tr.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Fatalf("scale-free max degree %d suspiciously small", maxDeg)
	}
}

func TestRandomRecursiveIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := RandomRecursive(100, rng)
	if tr.N() != 100 {
		t.Fatalf("N=%d", tr.N())
	}
}

func TestDepthAndHeightConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		tr := RandomRecursive(1+rng.Intn(60), rng)
		maxDepth := 0
		for v := 0; v < tr.N(); v++ {
			want := len(tr.PathToRoot(v)) // hops to root + 1 == hops to d
			if got := tr.Depth(v); got != want {
				t.Fatalf("Depth(%d)=%d, want %d", v, got, want)
			}
			if tr.Depth(v) > maxDepth {
				maxDepth = tr.Depth(v)
			}
		}
		if tr.Height() != maxDepth-1 {
			t.Fatalf("Height=%d, want %d", tr.Height(), maxDepth-1)
		}
	}
}

func TestRhoUpMatchesExplicitSum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		parent := make([]int, n)
		omega := make([]float64, n)
		parent[0] = NoParent
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		for v := 0; v < n; v++ {
			omega[v] = 0.25 + rng.Float64()*4
		}
		tr := MustNew(parent, omega)
		for v := 0; v < n; v++ {
			sum := 0.0
			u := v
			for l := 0; l <= tr.Depth(v); l++ {
				if got := tr.RhoUp(v, l); !close(got, sum) {
					t.Fatalf("RhoUp(%d,%d)=%v, want %v", v, l, got, sum)
				}
				if l < tr.Depth(v) {
					sum += tr.Rho(u)
					u = tr.Parent(u)
				} else {
					sum += tr.Rho(tr.Root())
				}
			}
		}
	}
}

func TestAncestor(t *testing.T) {
	tr := Path(4) // 0-1-2-3
	if got := tr.Ancestor(3, 2); got != 1 {
		t.Fatalf("Ancestor(3,2)=%d, want 1", got)
	}
	if got := tr.Ancestor(3, 0); got != 3 {
		t.Fatalf("Ancestor(3,0)=%d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Ancestor beyond root did not panic")
		}
	}()
	tr.Ancestor(0, 1)
}

func TestSubtreeSizesAndLoads(t *testing.T) {
	tr := CompleteBinary(3)
	sz := tr.SubtreeSizes()
	if sz[0] != 7 || sz[1] != 3 || sz[3] != 1 {
		t.Fatalf("sizes = %v", sz)
	}
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	sub := tr.SubtreeLoads(loads)
	if sub[0] != 17 || sub[1] != 8 || sub[2] != 9 || sub[4] != 6 {
		t.Fatalf("subtree loads = %v", sub)
	}
}

func TestPostOrderVisitsChildrenFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := RandomRecursive(80, rng)
	seen := make([]bool, tr.N())
	for _, v := range tr.PostOrder() {
		for _, c := range tr.Children(v) {
			if !seen[c] {
				t.Fatalf("post-order visited %d before child %d", v, c)
			}
		}
		seen[v] = true
	}
}

func TestRateSchemes(t *testing.T) {
	base := CompleteBinary(3) // height 2
	lin := ApplyRates(base, RatesLinear())
	// Leaf edges rate 1, middle 2, root edge 3.
	if got := 1 / lin.Rho(3); got != 1 {
		t.Fatalf("linear leaf rate %v, want 1", got)
	}
	if got := 1 / lin.Rho(1); got != 2 {
		t.Fatalf("linear mid rate %v, want 2", got)
	}
	if got := 1 / lin.Rho(0); got != 3 {
		t.Fatalf("linear root rate %v, want 3", got)
	}
	exp := ApplyRates(base, RatesExponential())
	if got := 1 / exp.Rho(3); got != 1 {
		t.Fatalf("exp leaf rate %v, want 1", got)
	}
	if got := 1 / exp.Rho(1); got != 2 {
		t.Fatalf("exp mid rate %v, want 2", got)
	}
	if got := 1 / exp.Rho(0); got != 4 {
		t.Fatalf("exp root rate %v, want 4", got)
	}
	c := ApplyRates(base, RatesConstant(5))
	if got := 1 / c.Rho(4); got != 5 {
		t.Fatalf("const rate %v, want 5", got)
	}
}

func TestQuickRandomRecursiveInvariants(t *testing.T) {
	// Property: for any seed and size, RandomRecursive yields a connected
	// tree where every non-root node has a lower-numbered parent and
	// depths increase by exactly one along edges.
	f := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 1
		tr := RandomRecursive(n, rand.New(rand.NewSource(seed)))
		for v := 1; v < n; v++ {
			p := tr.Parent(v)
			if p >= v || tr.Depth(v) != tr.Depth(p)+1 {
				return false
			}
		}
		return len(tr.BFSOrder()) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOTAndSketch(t *testing.T) {
	tr := CompleteBinary(2)
	var sb strings.Builder
	if err := tr.WriteDOT(&sb, []int{0, 3, 4}, []bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "n0 -> d", "lightblue", "L=3"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	sk := tr.Sketch([]int{0, 3, 4}, []bool{true, false, false})
	for _, want := range []string{"BLUE", "load=3", "d (destination)"} {
		if !strings.Contains(sk, want) {
			t.Fatalf("sketch missing %q:\n%s", want, sk)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}
