// Package lockdiscipline is golden-test input for the lockdiscipline
// analyzer: no channel op, Solve* call, or blocking pool Get under a
// //soar:critical mutex, and the declared lock order is enforced.
package lockdiscipline

import "sync"

//soar:lockorder closeMu mu

type coord struct {
	closeMu sync.RWMutex //soar:critical
	mu      sync.Mutex   //soar:critical
	ch      chan int
	pool    sync.Pool
	n       int
}

// SolveBudget is a Solve*-named entry point: never under a critical mutex.
func SolveBudget(c *coord) int { return c.n }

// notify performs a channel operation, so it is tainted transitively.
func notify(c *coord) { c.ch <- 1 }

func (c *coord) sendLocked() {
	c.mu.Lock()
	c.ch <- 1 // want "channel send while holding mu"
	c.mu.Unlock()
}

func (c *coord) recvLocked() {
	c.mu.Lock()
	<-c.ch // want "channel receive while holding mu"
	c.mu.Unlock()
}

func (c *coord) selectLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "select while holding mu"
	case <-c.ch:
	default:
	}
}

func (c *coord) solveLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SolveBudget(c) // want "calls example.com/lockdiscipline.SolveBudget while holding mu"
}

func (c *coord) poolLocked() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pool.Get() // want "sync.Pool Get while holding mu"
}

func (c *coord) transitive() {
	c.mu.Lock()
	notify(c) // want "calls example.com/lockdiscipline.notify, which performs a channel operation, while holding mu"
	c.mu.Unlock()
}

func (c *coord) reentrant() {
	c.mu.Lock()
	c.mu.Lock() // want "acquires mu while already holding it"
	c.mu.Unlock()
	c.mu.Unlock()
}

func (c *coord) inverted() {
	c.mu.Lock()
	c.closeMu.RLock() // want "acquires closeMu while holding mu; //soar:lockorder requires closeMu before mu"
	c.closeMu.RUnlock()
	c.mu.Unlock()
}

// ordered takes the locks in the declared order: clean.
func (c *coord) ordered() int {
	c.closeMu.RLock()
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	c.closeMu.RUnlock()
	return n
}

// unlockedOps releases before every blocking operation: clean.
func (c *coord) unlockedOps() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.ch <- 1
	return SolveBudget(c)
}
