package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The annotation language. Annotations are ordinary comments beginning
// with //soar: — they carry no semantics for the compiler, only for
// soarlint:
//
//	//soar:immutable   on a type or struct field: no writes after
//	                   construction (enforced by the immutable analyzer)
//	//soar:ctor        on a function: exempt from the immutable analyzer
//	                   (it constructs the immutable values)
//	//soar:hotpath     on a function: allocation-free contract (enforced
//	                   by the hotpath analyzer)
//	//soar:coldpath    on or directly above a statement (or on a block's
//	                   opening-brace line): waives the hotpath analyzer
//	                   for that statement — slow-path branches such as
//	                   storage growth or engine rebuilds
//	//soar:rawk        on or directly above a statement: waives the
//	                   capclamp analyzer for that statement
//	//soar:critical    on a mutex struct field: lockdiscipline guards
//	                   its critical sections
//	//soar:lockorder A B   package-scoped directive: lock A must never
//	                   be acquired while B is held
type Notes struct {
	// Hotpath maps function symbols (pkg.Type.name or pkg.name) to the
	// annotation's position.
	Hotpath map[string]token.Pos
	// Ctor marks functions exempt from the immutable analyzer.
	Ctor map[string]bool
	// ImmType marks immutable named types ("pkgpath.TypeName").
	ImmType map[string]bool
	// ImmField marks immutable struct fields ("pkgpath.TypeName.field").
	ImmField map[string]bool
	// Critical marks mutex fields guarded by lockdiscipline
	// ("pkgpath.TypeName.field").
	Critical map[string]bool
	// LockOrder maps a package path to its declared acquisition order,
	// outermost first.
	LockOrder map[string][]string
	// lines maps filename -> line -> positional directive names
	// (coldpath, rawk) found on that line.
	lines map[string]map[int][]string
}

func newNotes() *Notes {
	return &Notes{
		Hotpath:   make(map[string]token.Pos),
		Ctor:      make(map[string]bool),
		ImmType:   make(map[string]bool),
		ImmField:  make(map[string]bool),
		Critical:  make(map[string]bool),
		LockOrder: make(map[string][]string),
		lines:     make(map[string]map[int][]string),
	}
}

// waivedAt reports whether directive name appears on pos's line or the
// line directly above it — the positional waiver rule. Putting the
// directive on a block's opening-brace line waives the whole block,
// since the block statement starts on that line.
func (n *Notes) waivedAt(pos token.Position, name string) bool {
	byLine := n.lines[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// ColdAt reports whether a //soar:coldpath waiver covers pos.
func (n *Notes) ColdAt(pos token.Position) bool { return n.waivedAt(pos, "coldpath") }

// RawkAt reports whether a //soar:rawk waiver covers pos.
func (n *Notes) RawkAt(pos token.Position) bool { return n.waivedAt(pos, "rawk") }

// directiveNames extracts the //soar: directive names from one comment
// line ("//soar:hotpath reason" -> "hotpath").
func directiveNames(text string) []string {
	var names []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		after, ok := strings.CutPrefix(line, "//soar:")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(after, " ")
		if name != "" {
			names = append(names, name)
		}
	}
	return names
}

// groupHas reports whether the comment group carries the directive.
func groupHas(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		for _, d := range directiveNames(c.Text) {
			if d == name {
				return true
			}
		}
	}
	return false
}

// collectNotes gathers the module-wide annotation facts. All units are
// scanned before any analyzer runs, because hotpath's transitive check
// consults callee annotations across package boundaries.
func collectNotes(mod *Module) *Notes {
	n := newNotes()
	for _, u := range mod.Units {
		for _, f := range u.Files {
			n.scanComments(mod.Fset, u, f)
		}
	}
	for _, u := range mod.Units {
		for _, f := range u.Files {
			n.scanDecls(mod.Fset, u, f)
		}
	}
	return n
}

// scanComments records positional directives (coldpath, rawk) and
// package-scoped lockorder directives.
func (n *Notes) scanComments(fset *token.FileSet, u *Unit, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := fset.Position(c.Pos())
			for _, d := range directiveNames(c.Text) {
				switch d {
				case "coldpath", "rawk":
					byLine := n.lines[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						n.lines[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], d)
				case "lockorder":
					line := strings.TrimSpace(c.Text)
					after, _ := strings.CutPrefix(line, "//soar:lockorder")
					fields := strings.Fields(after)
					if len(fields) >= 2 {
						n.LockOrder[unitPkgPath(u)] = fields
					}
				}
			}
		}
	}
}

// unitPkgPath is the unit's import path without the external-test
// suffix, matching the package path annotations key on.
func unitPkgPath(u *Unit) string {
	return strings.TrimSuffix(u.ImportPath, ".test")
}

// scanDecls records declaration-attached annotations: hotpath/ctor on
// functions, immutable on types and fields, critical on mutex fields.
func (n *Notes) scanDecls(fset *token.FileSet, u *Unit, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			obj, _ := u.Info.Defs[d.Name].(*types.Func)
			sym := symbolOf(obj)
			if sym == "" {
				continue
			}
			if groupHas(d.Doc, "hotpath") || n.declLineHas(fset, f, d, "hotpath") {
				n.Hotpath[sym] = d.Pos()
			}
			if groupHas(d.Doc, "ctor") || n.declLineHas(fset, f, d, "ctor") {
				n.Ctor[sym] = true
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := u.Info.Defs[ts.Name]
				if obj == nil || obj.Pkg() == nil {
					continue
				}
				typeKey := obj.Pkg().Path() + "." + obj.Name()
				if groupHas(d.Doc, "immutable") || groupHas(ts.Doc, "immutable") || groupHas(ts.Comment, "immutable") {
					n.ImmType[typeKey] = true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					imm := groupHas(field.Doc, "immutable") || groupHas(field.Comment, "immutable")
					crit := groupHas(field.Doc, "critical") || groupHas(field.Comment, "critical")
					if !imm && !crit {
						continue
					}
					for _, name := range field.Names {
						if imm {
							n.ImmField[typeKey+"."+name.Name] = true
						}
						if crit {
							n.Critical[typeKey+"."+name.Name] = true
						}
					}
				}
			}
		}
	}
}

// declLineHas reports whether a directive comment sits on the
// declaration's first line — the one-liner accessor form
// `func (t *Tree) N() int { return t.n } //soar:hotpath`.
func (n *Notes) declLineHas(fset *token.FileSet, f *ast.File, d *ast.FuncDecl, name string) bool {
	declPos := fset.Position(d.Pos())
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			cpos := fset.Position(c.Pos())
			if cpos.Filename != declPos.Filename || cpos.Line != declPos.Line {
				continue
			}
			for _, dn := range directiveNames(c.Text) {
				if dn == name {
					return true
				}
			}
		}
	}
	return false
}

// symbolOf returns the stable string key for a function object:
// "pkgpath.name" for package functions, "pkgpath.Type.name" for
// methods (pointer receivers are dereferenced). Empty for nil,
// builtins and universe objects.
func symbolOf(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	fn = fn.Origin()
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if tn := namedName(rt); tn != "" {
			return pkg.Path() + "." + tn + "." + fn.Name()
		}
		return pkg.Path() + ".(recv)." + fn.Name()
	}
	return pkg.Path() + "." + fn.Name()
}

// namedName returns the name of a named or alias type, or "".
func namedName(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// namedKey returns "pkgpath.TypeName" for a (possibly pointer-wrapped)
// named type, or "".
func namedKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
