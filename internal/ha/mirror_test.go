package ha

import (
	"bytes"
	"testing"
	"time"

	"soar/internal/sched"
	"soar/internal/topology"
)

// TestMirrorJoinAndPromote drives the -join path: an out-of-process
// replica attaches to a shard primary's replication listener, syncs
// the checkpoint, tracks per-commit deltas, and promotes into a
// scheduler holding lease-for-lease the primary's state.
func TestMirrorJoinAndPromote(t *testing.T) {
	tr := topology.CompleteKAry(3, 4)
	cl, err := NewCluster(tr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.Partitioning()

	// Seed the shard with state before the mirror exists: it must
	// arrive via the checkpoint stream, not deltas.
	pre, err := cl.Place(podLoad(p, 0), 2)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMirror(tr, 1, cl.Status()[0].PrimaryAddr, MirrorConfig{
		Shard:      0,
		Node:       999,
		Heartbeat:  25 * time.Millisecond,
		MissBudget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	waitFor(t, 3*time.Second, "mirror sync", func() bool {
		st := m.Status()
		return st.Synced && st.Seq >= cl.Status()[0].Seq
	})

	// And state placed after the attach must arrive as deltas.
	post, err := cl.Place(podLoad(p, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "mirror delta catch-up", func() bool {
		return m.Status().Seq >= cl.Status()[0].Seq
	})
	if m.Status().Journal == 0 {
		t.Fatal("post-attach commit did not travel as a delta")
	}

	// The mirror's gauges render alongside the soar_ha_* counters.
	var text bytes.Buffer
	if err := m.Registry().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"soar_ha_mirror_seq", "soar_ha_mirror_epoch", "soar_ha_deltas_total"} {
		if !bytes.Contains(text.Bytes(), []byte(fam)) {
			t.Fatalf("mirror registry missing %s", fam)
		}
	}

	sch, err := m.Promote(sched.Config{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()
	for _, gid := range []int64{pre.ID, post.ID} {
		_, local := SplitID(gid)
		want, err := cl.Lookup(gid)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sch.Lookup(local)
		if err != nil {
			t.Fatalf("promoted scheduler lost lease %d: %v", local, err)
		}
		if got.Phi != want.Phi || got.K != want.K || len(got.Blue) != len(want.Blue) {
			t.Fatalf("promoted lease %d = %+v, want %+v", local, got, want)
		}
	}
	if err := sch.Audit(); err != nil {
		t.Fatal(err)
	}

	// A mirror that never synced refuses to promote.
	empty, err := NewMirror(tr, 1, "127.0.0.1:1", MirrorConfig{Shard: 1, Node: 998,
		Heartbeat: 10 * time.Millisecond, MissBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if _, err := empty.Promote(sched.Config{Capacity: 2}); err == nil {
		t.Fatal("unsynced mirror promoted")
	}
}
