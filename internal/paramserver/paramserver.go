// Package paramserver models the paper's distributed-ML use case
// (Sec. 5, "PS"): workers train locally and send sparse gradient updates
// to a parameter server, with in-network switches summing gradients.
//
// Following the paper (and its footnote 4), no neural network is actually
// trained — only the messages matter. Each worker's gradient covers a
// 10K-dimensional feature space with dropout 0.5: every coordinate is
// present independently with probability 0.5. Aggregation is the
// coordinate-wise sum over the union of present coordinates, so message
// sizes grow only mildly toward the root — which is exactly why the
// paper finds PS byte complexity to track utilization closely.
package paramserver

import (
	"math/rand"

	"soar/internal/reduce"
)

// Config describes the gradient messages.
type Config struct {
	// Features is the dimension of the feature space (paper: 10_000).
	Features int
	// Dropout is the probability a coordinate is absent (paper: 0.5).
	Dropout float64
	// EntryBytes is the wire size of one (index, value) pair (default 8:
	// a 4-byte index and a float32).
	EntryBytes int
}

// DefaultConfig is the paper's setup: 10K features, dropout 0.5.
func DefaultConfig() Config {
	return Config{Features: 10_000, Dropout: 0.5, EntryBytes: 8}
}

// TestConfig is a small space for unit tests.
func TestConfig() Config {
	return Config{Features: 400, Dropout: 0.5, EntryBytes: 8}
}

// Gradient is a sparse gradient payload.
type Gradient struct {
	Values     map[int32]float32
	entryBytes int64
}

// SizeBytes implements reduce.Payload: nnz × EntryBytes.
func (g *Gradient) SizeBytes() int64 {
	return int64(len(g.Values)) * g.entryBytes
}

// NNZ returns the number of present coordinates.
func (g *Gradient) NNZ() int { return len(g.Values) }

// Sum returns the total of all coordinate values; it is conserved by
// Merge, which the tests exploit.
func (g *Gradient) Sum() float64 {
	var s float64
	for _, v := range g.Values {
		s += float64(v)
	}
	return s
}

// Aggregator produces per-worker sparse gradients and sums them. It
// implements reduce.Aggregator. Gradients are regenerated
// deterministically from (seed, worker index).
type Aggregator struct {
	cfg  Config
	seed int64
}

// NewAggregator builds a gradient source for any number of workers.
func NewAggregator(cfg Config, seed int64) *Aggregator {
	if cfg.EntryBytes == 0 {
		cfg.EntryBytes = 8
	}
	return &Aggregator{cfg: cfg, seed: seed}
}

// Produce implements reduce.Aggregator: worker i's sparse gradient.
func (a *Aggregator) Produce(i int) reduce.Payload {
	rng := rand.New(rand.NewSource(a.seed ^ (int64(i)+1)*0x5851F42D4C957F2D))
	g := &Gradient{
		Values:     make(map[int32]float32, int(float64(a.cfg.Features)*(1-a.cfg.Dropout))),
		entryBytes: int64(a.cfg.EntryBytes),
	}
	for f := 0; f < a.cfg.Features; f++ {
		if rng.Float64() >= a.cfg.Dropout {
			g.Values[int32(f)] = float32(rng.NormFloat64())
		}
	}
	return g
}

// Merge implements reduce.Aggregator: coordinate-wise sum over the union
// of present coordinates.
func (a *Aggregator) Merge(p, q reduce.Payload) reduce.Payload {
	dst, src := p.(*Gradient), q.(*Gradient)
	for f, v := range src.Values {
		dst.Values[f] += v
	}
	return dst
}

var _ reduce.Aggregator = (*Aggregator)(nil)
