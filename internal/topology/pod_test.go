package topology

import "testing"

// TestPodTreeStructure checks the spine-chain + subtree extraction on a
// complete 3-ary tree: depths, rates and hop costs must match the
// global tree switch-for-switch.
func TestPodTreeStructure(t *testing.T) {
	tr := CompleteKAry(3, 4)
	for _, v := range tr.NodesAtLevel(1) {
		pod, err := tr.PodTree(v)
		if err != nil {
			t.Fatalf("PodTree(%d): %v", v, err)
		}
		if pod.Spine != 1 {
			t.Fatalf("pod %d: spine = %d, want 1", v, pod.Spine)
		}
		if pod.Global[0] != tr.Root() {
			t.Fatalf("pod %d: local 0 = global %d, want root %d", v, pod.Global[0], tr.Root())
		}
		if pod.Global[pod.Spine] != v {
			t.Fatalf("pod %d: pod root local %d maps to %d", v, pod.Spine, pod.Global[pod.Spine])
		}
		for lv, gv := range pod.Global {
			if pod.Local[gv] != lv {
				t.Fatalf("pod %d: Local[%d] = %d, want %d", v, gv, pod.Local[gv], lv)
			}
			if got, want := pod.Tree.Depth(lv), tr.Depth(gv); got != want {
				t.Fatalf("pod %d: depth(local %d) = %d, global %d has %d", v, lv, got, gv, want)
			}
			if got, want := pod.Tree.Rho(lv), tr.Rho(gv); got != want {
				t.Fatalf("pod %d: rho(local %d) = %v, global %d has %v", v, lv, got, gv, want)
			}
			for l := 0; l <= pod.Tree.Depth(lv); l++ {
				if got, want := pod.Tree.RhoUp(lv, l), tr.RhoUp(gv, l); got != want {
					t.Fatalf("pod %d: rhoUp(local %d, %d) = %v, want %v", v, lv, l, got, want)
				}
			}
		}
		// Outside switches are unmapped.
		mapped := 0
		for _, lv := range pod.Local {
			if lv >= 0 {
				mapped++
			}
		}
		if mapped != pod.Tree.N() {
			t.Fatalf("pod %d: %d globals mapped for %d locals", v, mapped, pod.Tree.N())
		}
	}
}

// TestPodTreeDeepSpine extracts a level-2 pod: the spine must be the
// whole root→parent chain and child order must follow the global BFS.
func TestPodTreeDeepSpine(t *testing.T) {
	tr, err := BT(16)
	if err != nil {
		t.Fatalf("BT: %v", err)
	}
	leavesParent := tr.NodesAtLevel(2)[0]
	pod, err := tr.PodTree(leavesParent)
	if err != nil {
		t.Fatalf("PodTree: %v", err)
	}
	if pod.Spine != 2 {
		t.Fatalf("spine = %d, want 2", pod.Spine)
	}
	for lv := 1; lv < pod.Tree.N(); lv++ {
		gp := tr.Parent(pod.Global[lv])
		if pod.Global[pod.Tree.Parent(lv)] != gp {
			t.Fatalf("local %d: parent maps to %d, want %d", lv, pod.Global[pod.Tree.Parent(lv)], gp)
		}
	}
	// Whole-tree pod: rooting at the global root gives an isomorphic copy.
	whole, err := tr.PodTree(tr.Root())
	if err != nil {
		t.Fatalf("PodTree(root): %v", err)
	}
	if whole.Spine != 0 || whole.Tree.N() != tr.N() {
		t.Fatalf("whole-tree pod: spine %d, n %d", whole.Spine, whole.Tree.N())
	}

	if _, err := tr.PodTree(-1); err == nil {
		t.Fatal("PodTree(-1) accepted")
	}
	if _, err := tr.PodTree(tr.N()); err == nil {
		t.Fatal("PodTree(N) accepted")
	}
}
