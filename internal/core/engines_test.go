package core

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// TestAllEnginesAgree drives every engine — serial, parallel,
// goroutine-distributed, compact, incremental — over randomized
// instances (availability-restricted, plus the k = 0 and k ≥ n corners
// of the effective-budget clamping) and requires identical costs and
// bitwise-identical placements: all engines share the same clamped
// tables and tie-breaking, so their blue sets must match switch for
// switch, not just in cost.
func TestAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(6)
			avail[v] = rng.Intn(4) != 0
		}
		var k int
		switch trial % 4 {
		case 0:
			k = 0 // cap[v] = 0 everywhere
		case 1:
			k = n + rng.Intn(4) // k ≥ n: every cap clamps at |T_v ∩ Λ|
		default:
			k = rng.Intn(8)
		}

		serial := Solve(tr, loads, avail, k)
		inc := NewIncremental(tr, loads, avail, k)

		for name, res := range map[string]Result{
			"parallel":    SolveParallel(tr, loads, avail, k, 4),
			"distributed": SolveDistributed(tr, loads, avail, k),
			"compact":     SolveCompact(tr, loads, avail, k),
			"incremental": inc.Solve(),
		} {
			if math.Abs(res.Cost-serial.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s φ=%v, serial φ=%v", trial, name, res.Cost, serial.Cost)
			}
			if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s placement costs %v, reported %v", trial, name, sim, res.Cost)
			}
			for v, b := range res.Blue {
				if b && !avail[v] {
					t.Fatalf("trial %d: %s colored unavailable switch %d", trial, name, v)
				}
				if b != serial.Blue[v] {
					t.Fatalf("trial %d: %s placement differs from serial at switch %d", trial, name, v)
				}
			}
		}
	}
}

// TestIncrementalMatchesFullEngines drives the stateful engine through
// randomized update sequences — load deltas, availability flips, batches
// of both — and after every flush cross-checks it against all three
// from-scratch engines on the engine's current inputs.
func TestIncrementalMatchesFullEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(50)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(6)
			avail[v] = rng.Intn(4) != 0 // availability-restricted instances
		}
		k := rng.Intn(6) // includes k = 0
		inc := NewIncremental(tr, loads, avail, k)

		for step := 0; step < 12; step++ {
			// A batch of 1..4 point updates before each check, so flushes
			// see coalesced dirty paths, not single-path updates.
			for b := 1 + rng.Intn(4); b > 0; b-- {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					loads[v] = rng.Intn(6)
					inc.SetLoad(v, loads[v])
				} else {
					avail[v] = !avail[v]
					inc.SetAvail(v, avail[v])
				}
			}
			checkIncremental(t, trial, step, inc, tr, loads, avail, k)
		}

		// Edge case: drive every load to zero through the update path.
		for v := 0; v < n; v++ {
			inc.UpdateLoad(v, -loads[v])
			loads[v] = 0
		}
		checkIncremental(t, trial, -1, inc, tr, loads, avail, k)
	}
}

// checkIncremental requires the stateful engine to agree with Solve,
// SolveCompact and SolveParallel on (loads, avail, k), and its tables to
// be bitwise identical to a from-scratch Gather.
func checkIncremental(t *testing.T, trial, step int, inc *Incremental, tr *topology.Tree, loads []int, avail []bool, k int) {
	t.Helper()
	got := inc.Solve()
	for name, ref := range map[string]Result{
		"serial":   Solve(tr, loads, avail, k),
		"compact":  SolveCompact(tr, loads, avail, k),
		"parallel": SolveParallel(tr, loads, avail, k, 4),
	} {
		if math.Abs(got.Cost-ref.Cost) > 1e-9 {
			t.Fatalf("trial %d step %d: incremental φ=%v, %s φ=%v", trial, step, got.Cost, name, ref.Cost)
		}
	}
	if sim := reduce.Utilization(tr, loads, got.Blue); math.Abs(sim-got.Cost) > 1e-9 {
		t.Fatalf("trial %d step %d: incremental placement costs %v, reported %v", trial, step, sim, got.Cost)
	}
	for v, b := range got.Blue {
		if b && !avail[v] {
			t.Fatalf("trial %d step %d: incremental colored unavailable switch %d", trial, step, v)
		}
	}
	full := Gather(tr, loads, avail, k)
	itb := inc.Tables()
	for v := 0; v < tr.N(); v++ {
		for l := 0; l <= tr.Depth(v); l++ {
			for i := 0; i <= k; i++ {
				if itb.X(v, l, i) != full.X(v, l, i) {
					t.Fatalf("trial %d step %d: X_%d(%d,%d): incremental %v, full %v",
						trial, step, v, l, i, itb.X(v, l, i), full.X(v, l, i))
				}
			}
		}
	}
}

func TestIncrementalPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	inc := NewIncremental(tr, loads, nil, 2)
	if res := inc.Solve(); res.Cost != 20 {
		t.Fatalf("incremental φ=%v, want 20", res.Cost)
	}
	// Repeated solves with no pending updates must not drift.
	if res := inc.Solve(); res.Cost != 20 {
		t.Fatalf("second incremental solve φ=%v, want 20", res.Cost)
	}
	if inc.Pending() != 0 {
		t.Fatalf("pending %d after flush, want 0", inc.Pending())
	}
}

func TestIncrementalAllUnavailable(t *testing.T) {
	tr, loads := paper.Figure2()
	inc := NewIncremental(tr, loads, nil, 2)
	for v := 0; v < tr.N(); v++ {
		inc.SetAvail(v, false)
	}
	want := Solve(tr, loads, make([]bool, tr.N()), 2)
	if got := inc.Solve(); got.Cost != want.Cost {
		t.Fatalf("all-unavailable incremental φ=%v, want %v", got.Cost, want.Cost)
	}
	for v := 0; v < tr.N(); v++ {
		inc.SetAvail(v, true)
	}
	if got := inc.Solve(); got.Cost != 20 {
		t.Fatalf("restored incremental φ=%v, want 20", got.Cost)
	}
}

func TestIncrementalSingleNode(t *testing.T) {
	tr := topology.MustNew([]int{topology.NoParent}, []float64{1})
	inc := NewIncremental(tr, []int{3}, nil, 1)
	if got := inc.Cost(); got != 1 { // blue root sends 1 message over (r, d)
		t.Fatalf("single-node φ=%v, want 1", got)
	}
	inc.UpdateLoad(0, -3)
	if got := inc.Cost(); got != 0 {
		t.Fatalf("single-node zero-load φ=%v, want 0", got)
	}
}

func TestIncrementalRejectsNegativeLoad(t *testing.T) {
	tr, loads := paper.Figure2()
	inc := NewIncremental(tr, loads, nil, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateLoad below zero did not panic")
		}
	}()
	inc.UpdateLoad(3, -loads[3]-1)
}

func TestParallelPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	for _, workers := range []int{0, 1, 2, 8, 64} {
		res := SolveParallel(tr, loads, nil, 2, workers)
		if res.Cost != 20 {
			t.Fatalf("workers=%d: φ=%v, want 20", workers, res.Cost)
		}
	}
}

func TestCompactPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	res := SolveCompact(tr, loads, nil, 2)
	if res.Cost != 20 {
		t.Fatalf("compact φ=%v, want 20", res.Cost)
	}
	want := []bool{false, false, true, false, true, false, false}
	for v := range want {
		if res.Blue[v] != want[v] {
			t.Fatalf("compact placement differs at %d", v)
		}
	}
}

func TestCompactTablesMatchStandard(t *testing.T) {
	tr, loads := paper.Figure2()
	full := Gather(tr, loads, nil, 3)
	compact := GatherCompact(tr, loads, nil, 3)
	for v := 0; v < tr.N(); v++ {
		for l := 0; l <= tr.Depth(v); l++ {
			for i := 0; i <= 3; i++ {
				if full.X(v, l, i) != compact.X(v, l, i) {
					t.Fatalf("X_%d(%d,%d): full %v, compact %v",
						v, l, i, full.X(v, l, i), compact.X(v, l, i))
				}
			}
		}
	}
}

func TestParallelBigTree(t *testing.T) {
	tr := topology.MustBT(1024)
	rng := rand.New(rand.NewSource(5))
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 1 + rng.Intn(10)
	}
	serial := Solve(tr, loads, nil, 32)
	par := SolveParallel(tr, loads, nil, 32, 0)
	if serial.Cost != par.Cost {
		t.Fatalf("parallel φ=%v, serial φ=%v", par.Cost, serial.Cost)
	}
}

func TestParallelStarHighFanIn(t *testing.T) {
	// A star maximizes contention on the single parent's dependency
	// counter.
	tr := topology.Star(500)
	loads := make([]int, 500)
	for v := 1; v < 500; v++ {
		loads[v] = v % 5
	}
	serial := Solve(tr, loads, nil, 12)
	par := SolveParallel(tr, loads, nil, 12, 16)
	if serial.Cost != par.Cost {
		t.Fatalf("parallel φ=%v, serial φ=%v", par.Cost, serial.Cost)
	}
}
