package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// treeJSON is the stable on-disk schema for a tree network: the parent
// vector (-1 for the root) and the per-edge rates ω, exactly the inputs
// New takes. Loads are deliberately separate (see internal/load): one
// network serves many workloads.
type treeJSON struct {
	Parents []int     `json:"parents"`
	Omega   []float64 `json:"omega"`
}

// Encode writes the tree as JSON. Decode(Encode(t)) reconstructs an
// identical tree.
func (t *Tree) Encode(w io.Writer) error {
	doc := treeJSON{Parents: t.parent, Omega: make([]float64, t.N())}
	for v := 0; v < t.N(); v++ {
		doc.Omega[v] = 1 / t.rho[v]
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("topology: encode: %w", err)
	}
	return nil
}

// Decode reads a tree written by Encode, validating it like New.
func Decode(r io.Reader) (*Tree, error) {
	var doc treeJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	return New(doc.Parents, doc.Omega)
}
