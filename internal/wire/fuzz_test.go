package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame drives the frame decoder with arbitrary bytes: it must
// return an error on truncated, corrupt or oversized-length frames —
// never panic, and never allocate beyond the bytes the stream actually
// delivers (readBody grows in bounded chunks). Frames that do decode
// must re-encode canonically: encode(decode(frame)) is byte-identical,
// which pins the format for checkpoints that outlive the process that
// wrote them.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(&Hello{Child: 3})
	seed(&Gather{Child: 1, Rows: 2, Cols: 3, X: []float64{1, 2, 3, 4.5, -1, 0}})
	seed(&Color{Budget: 4, L: 2})
	seed(&ReduceDone{Child: 7, Messages: 9, PhiBits: 0x3FF0000000000000})
	seed(&CkptHeader{Version: CkptVersion, Switches: 8, Tenants: 2, NextID: 5, TreeSum: 0xDEADBEEF})
	seed(&CkptLedger{Initial: []int32{4, 4, 0, 1 << 30}, Residual: []int32{4, 2, 0, 1 << 30}})
	seed(&CkptTenant{ID: 3, K: 2, PhiBits: 1, AllRedBits: 2, Blue: []uint32{1, 5}, LoadV: []uint32{6, 7}, LoadN: []uint32{2, 9}})
	seed(&CkptFooter{Tenants: 2, Sum: 0xFEEDFACE})
	seed(&Heartbeat{Shard: 1, Epoch: 3, Seq: 99})
	seed(&Epoch{Shard: 2, Epoch: 5, Node: 1001})
	seed(&CkptOffer{Shard: 0, Epoch: 1, Seq: 12, Bytes: 4096})
	seed(&LeaseDelta{Shard: 1, Epoch: 2, Seq: 13, Op: DeltaPlace, ID: 8, K: 2, PhiBits: 0x3FF0000000000000, Blue: []uint32{3, 4}, LoadV: []uint32{6}, LoadN: []uint32{2}})
	seed(&LeaseDelta{Shard: 1, Epoch: 2, Seq: 14, Op: DeltaRelease, ID: 8})
	// Adversarial shapes: oversized length claim, length lying about a
	// short stream, zero length, unknown type, truncated header.
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrame+1))
	f.Add(append(binary.BigEndian.AppendUint32(nil, 1<<20), byte(TypeGather)))
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 2, 99, 0})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: exactly what malformed bytes deserve
		}
		var first bytes.Buffer
		if err := Write(&first, m); err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		m2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		var second bytes.Buffer
		if err := Write(&second, m2); err != nil {
			t.Fatalf("re-decoded %T does not encode: %v", m2, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%T encoding is not canonical:\n  %x\nvs\n  %x", m, first.Bytes(), second.Bytes())
		}
	})
}

// FuzzDecodeReplicationStream drives the decoder the way a standby's
// attach loop does: many frames back to back on one connection. The
// replication protocol (internal/ha) trusts frame boundaries to resync
// after each message, so a corrupt frame mid-stream must produce an
// error at that frame — never a panic, never misparsing a later frame's
// bytes as a fresh header — and every frame that does decode must
// re-encode canonically. Seq monotonicity across decoded LeaseDeltas is
// the receiver's job (internal/ha re-attaches on gaps), not the
// decoder's, so it is not asserted here.
func FuzzDecodeReplicationStream(f *testing.F) {
	stream := func(ms ...Message) []byte {
		var buf bytes.Buffer
		for _, m := range ms {
			if err := Write(&buf, m); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	// A realistic attach: epoch handshake, checkpoint offer, two deltas,
	// a heartbeat.
	f.Add(stream(
		&Epoch{Shard: 0, Epoch: 1, Node: 2},
		&CkptOffer{Shard: 0, Epoch: 1, Seq: 3, Bytes: 0},
		&LeaseDelta{Shard: 0, Epoch: 1, Seq: 4, Op: DeltaPlace, ID: 1, K: 1, Blue: []uint32{0}, LoadV: []uint32{0}, LoadN: []uint32{1}},
		&LeaseDelta{Shard: 0, Epoch: 1, Seq: 5, Op: DeltaRelease, ID: 1},
		&Heartbeat{Shard: 0, Epoch: 1, Seq: 5},
	))
	// A fencing exchange: stale primary heartbeat, NACK with higher epoch.
	f.Add(stream(
		&Heartbeat{Shard: 1, Epoch: 1, Seq: 10},
		&Epoch{Shard: 1, Epoch: 2, Node: 7},
	))
	// A migrate delta followed by torn trailing bytes.
	f.Add(append(stream(
		&LeaseDelta{Shard: 2, Epoch: 3, Seq: 9, Op: DeltaMigrate, ID: 4, K: 2, PhiBits: 1, Blue: []uint32{1, 2}},
	), 0x00, 0x00, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 64; i++ {
			m, err := Read(r)
			if err != nil {
				return // stream ends at the first malformed or truncated frame
			}
			var first bytes.Buffer
			if err := Write(&first, m); err != nil {
				t.Fatalf("decoded %T does not re-encode: %v", m, err)
			}
			m2, err := Read(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("re-encoded %T does not decode: %v", m, err)
			}
			var second bytes.Buffer
			if err := Write(&second, m2); err != nil {
				t.Fatalf("re-decoded %T does not encode: %v", m2, err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("%T encoding is not canonical:\n  %x\nvs\n  %x", m, first.Bytes(), second.Bytes())
			}
		}
	})
}
